// Dijkstra single-source shortest paths.
//
// Two entry points:
//  * `sssp(graph, source)` for materialized WeightedGraph instances, and
//  * the templated `dijkstra_over(n, source, neighbor_fn, out)` that runs over
//    an *implicit* graph described by a callback.  The game engine uses the
//    implicit form heavily: evaluating a candidate strategy S_u means running
//    Dijkstra over "everyone else's edges plus u's candidate edges" without
//    materializing that graph (the exact best-response search does this tens
//    of thousands of times per agent).
//
// Weights are non-negative doubles (zero allowed); unreachable nodes get kInf.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "support/instrument.hpp"

namespace gncg {

/// Result of a single-source run: distances (kInf if unreachable) and the
/// predecessor of each node on some shortest path (-1 for source/unreached).
struct SsspResult {
  std::vector<double> dist;
  std::vector<int> parent;
};

namespace detail {

/// Min-heap entry: (distance, node).
using HeapEntry = std::pair<double, int>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// Buffer-shrink policy for reusable workspaces: a vector whose capacity
/// exceeds kShrinkFactor times the current need (with a floor below which
/// nobody cares) is released and re-reserved tight.  Keeps a workspace that
/// once served a big-n engine from pinning that memory -- and from handing
/// later small-n callers a huge capacity -- forever.
inline constexpr std::size_t kShrinkFactor = 4;
inline constexpr std::size_t kShrinkFloor = 256;

// Shrinks taken (release_excess firing, dial ring-array downsizing) are
// counted per-worker through instrument::Counter::kArenaShrinkEvents --
// no process-wide atomic on the reuse path.  arena_stats() reports the
// cross-worker sum (zero in GNCG_INSTRUMENT=OFF builds).

template <class T>
void release_excess(std::vector<T>& v, std::size_t needed) {
  if (v.capacity() > kShrinkFactor * std::max(needed, kShrinkFloor)) {
    std::vector<T>().swap(v);
    v.reserve(needed);
    GNCG_COUNT(kArenaShrinkEvents);
  }
}

}  // namespace detail

/// Dijkstra over an implicit graph.  `neighbor_fn(u, visit)` must invoke
/// `visit(v, w)` for every edge (u, v) of weight w incident to u.  Fills
/// `dist` (resized to n, kInf-initialized).  If `parent` is non-null it is
/// filled with shortest-path-tree predecessors.
template <class NeighborFn>
void dijkstra_over(int n, int source, NeighborFn&& neighbor_fn,
                   std::vector<double>& dist,
                   std::vector<int>* parent = nullptr) {
  GNCG_CHECK(source >= 0 && source < n, "source out of range");
  GNCG_COUNT(kSsspHeapRuns);
  // Counter discipline for hot kernels: accumulate into stack locals, flush
  // to the thread-local block once per run (the locals vanish under OFF).
  GNCG_IF_INSTRUMENT(std::uint64_t pops = 0; std::uint64_t relaxations = 0;)
  dist.assign(static_cast<std::size_t>(n), kInf);
  if (parent != nullptr) parent->assign(static_cast<std::size_t>(n), -1);
  detail::MinHeap heap;
  dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    GNCG_IF_INSTRUMENT(++pops;)
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    neighbor_fn(u, [&](int v, double w) {
      GNCG_DASSERT(w >= 0.0);
      const double candidate = d + w;
      if (candidate < dist[static_cast<std::size_t>(v)]) {
        GNCG_IF_INSTRUMENT(++relaxations;)
        dist[static_cast<std::size_t>(v)] = candidate;
        if (parent != nullptr) (*parent)[static_cast<std::size_t>(v)] = u;
        heap.emplace(candidate, v);
      }
    });
  }
  GNCG_COUNT_N(kSsspHeapPops, pops);
  GNCG_COUNT_N(kSsspHeapRelaxations, relaxations);
}

/// Reusable Dijkstra workspace: the distance vector and the heap's backing
/// store survive across runs, so hot paths (single-move scans, best-response
/// candidate evaluation, the deviation engine's cache refills) do not pay a
/// heap/vector allocation per call.  Not thread-safe; use the per-thread
/// instance from tls_dijkstra_buffers() inside parallel regions.
///
/// The heap is a binary min-heap over (distance, node) pairs driven by
/// std::push_heap/std::pop_heap with the same comparator std::priority_queue
/// uses, so pop order (and therefore floating-point relaxation order) is
/// identical to dijkstra_over's.
class DijkstraBuffers {
 public:
  /// Runs Dijkstra from `source` over the implicit graph `neighbor_fn`,
  /// filling `dist` (external storage, e.g. a cache vector owned by the
  /// caller).  `dist` is resized to n and kInf-initialized.
  template <class NeighborFn>
  void run_into(std::vector<double>& dist, int n, int source,
                NeighborFn&& neighbor_fn) {
    GNCG_CHECK(source >= 0 && source < n, "source out of range");
    GNCG_COUNT(kSsspHeapRuns);
    GNCG_IF_INSTRUMENT(std::uint64_t pops = 0; std::uint64_t relaxations = 0;)
    // Shrink before reuse: dist needs exactly n slots; the heap's need is a
    // decaying peak estimate (previous run's peak, floored at half the prior
    // estimate), so workloads that alternate run sizes keep their capacity
    // instead of shrink-then-regrowing, while a genuine downshift still
    // releases within a logarithmic number of runs.
    detail::release_excess(dist, static_cast<std::size_t>(n));
    heap_need_ = std::max(heap_peak_, heap_need_ / 2);
    detail::release_excess(heap_, heap_need_);
    heap_peak_ = 0;
    dist.assign(static_cast<std::size_t>(n), kInf);
    heap_.clear();
    dist[static_cast<std::size_t>(source)] = 0.0;
    push(0.0, source);
    while (!heap_.empty()) {
      const auto [d, u] = pop();
      GNCG_IF_INSTRUMENT(++pops;)
      if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
      neighbor_fn(u, [&](int v, double w) {
        GNCG_DASSERT(w >= 0.0);
        const double candidate = d + w;
        if (candidate < dist[static_cast<std::size_t>(v)]) {
          GNCG_IF_INSTRUMENT(++relaxations;)
          dist[static_cast<std::size_t>(v)] = candidate;
          push(candidate, v);
        }
      });
    }
    GNCG_COUNT_N(kSsspHeapPops, pops);
    GNCG_COUNT_N(kSsspHeapRelaxations, relaxations);
  }

  /// Runs Dijkstra into the internally owned distance vector and returns it.
  /// The reference stays valid until the next run on this workspace -- do
  /// not hold it across another run (in particular, not across a nested use
  /// of the same thread-local instance).
  template <class NeighborFn>
  const std::vector<double>& run(int n, int source, NeighborFn&& neighbor_fn) {
    run_into(dist_, n, source, std::forward<NeighborFn>(neighbor_fn));
    return dist_;
  }

  // Capacity observers for the shrink-policy regression tests.
  std::size_t dist_capacity() const { return dist_.capacity(); }
  std::size_t heap_capacity() const { return heap_.capacity(); }
  std::size_t footprint_bytes() const {
    return dist_.capacity() * sizeof(double) +
           heap_.capacity() * sizeof(detail::HeapEntry);
  }

 private:
  void push(double d, int v) {
    heap_.emplace_back(d, v);
    if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  detail::HeapEntry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const detail::HeapEntry entry = heap_.back();
    heap_.pop_back();
    return entry;
  }

  std::vector<double> dist_;
  std::vector<detail::HeapEntry> heap_;
  std::size_t heap_peak_ = 0;  ///< high-water mark of the previous run
  std::size_t heap_need_ = 0;  ///< decaying need estimate (shrink policy)
};

/// Bucket-queue ("dial") Dijkstra workspace for hosts whose finite weights
/// are all non-negative integers bounded by C.  Distances are then integers,
/// and a circular array of C+1 rings replaces the binary heap: pushes and
/// pops are O(1) instead of O(log m), and the sweep touches rings in strictly
/// increasing distance order.
///
/// Bit-identical to the heap path: every reachable distance is an exact
/// integer below 2^53, so both kernels converge to the same least fixpoint
/// d(t) = min over edges (x,t) of d(x) + w with *no* rounding anywhere --
/// the doubles compare equal bit-for-bit (tests/test_dial_dijkstra.cpp is
/// the gate).  Zero-weight edges are supported: a relaxation at the current
/// sweep distance appends to the ring being drained and is processed in the
/// same sweep.
///
/// Not thread-safe; lives in the per-worker ScratchArena.
class DialBuffers {
 public:
  /// Runs Dijkstra from `source` over the implicit graph `neighbor_fn`,
  /// filling `dist` (resized to n, kInf-initialized).  `max_weight` must
  /// bound every weight the enumeration produces; all weights must be
  /// non-negative integers.
  template <class NeighborFn>
  void run_into(std::vector<double>& dist, int n, int source, int max_weight,
                NeighborFn&& neighbor_fn) {
    GNCG_CHECK(source >= 0 && source < n, "source out of range");
    GNCG_CHECK(max_weight >= 0, "dial weight bound must be non-negative");
    GNCG_COUNT(kSsspDialRuns);
    GNCG_IF_INSTRUMENT(std::uint64_t pops = 0; std::uint64_t relaxations = 0;
                       std::uint64_t ring_scans = 0;)
    detail::release_excess(dist, static_cast<std::size_t>(n));
    dist.assign(static_cast<std::size_t>(n), kInf);
    const std::size_t rings = static_cast<std::size_t>(max_weight) + 1;
    if (buckets_.size() < rings) {
      buckets_.resize(rings);
    } else if (buckets_.size() > detail::kShrinkFactor * rings &&
               buckets_.size() > 64) {
      buckets_.resize(rings);
      buckets_.shrink_to_fit();
      GNCG_COUNT(kArenaShrinkEvents);
    }
    dist[static_cast<std::size_t>(source)] = 0.0;
    buckets_[0].push_back(source);
    // Every queued entry has a value in the window [d, d + max_weight], so
    // the modulo mapping onto the rings is injective over the live window
    // and each entry is drained within max_weight + 1 sweeps.
    std::size_t pending = 1;
    for (long long d = 0; pending > 0; ++d) {
      auto& ring = buckets_[static_cast<std::size_t>(d) % rings];
      const double sweep = static_cast<double>(d);
      GNCG_IF_INSTRUMENT(++ring_scans;)
      // The ring may grow mid-drain (zero-weight relaxations land here and
      // are processed in this same sweep), so re-check size() each step.
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const int x = ring[i];
        if (dist[static_cast<std::size_t>(x)] != sweep) continue;  // stale
        neighbor_fn(x, [&](int y, double w) {
          GNCG_DASSERT(w >= 0.0 && w <= static_cast<double>(max_weight));
          GNCG_DASSERT(w == static_cast<double>(static_cast<long long>(w)));
          const double candidate = sweep + w;
          const std::size_t yi = static_cast<std::size_t>(y);
          if (candidate < dist[yi]) {
            GNCG_IF_INSTRUMENT(++relaxations;)
            dist[yi] = candidate;
            buckets_[static_cast<std::size_t>(d + static_cast<long long>(w)) %
                     rings]
                .push_back(y);
            ++pending;
          }
        });
      }
      GNCG_IF_INSTRUMENT(pops += ring.size();)
      pending -= ring.size();
      ring.clear();  // keeps ring capacity: zero steady-state allocation
    }
    GNCG_COUNT_N(kSsspDialPops, pops);
    GNCG_COUNT_N(kSsspDialRelaxations, relaxations);
    GNCG_COUNT_N(kSsspDialRingScans, ring_scans);
  }

  /// Runs into the internally owned distance vector; same aliasing caveats
  /// as DijkstraBuffers::run.
  template <class NeighborFn>
  const std::vector<double>& run(int n, int source, int max_weight,
                                 NeighborFn&& neighbor_fn) {
    run_into(dist_, n, source, max_weight,
             std::forward<NeighborFn>(neighbor_fn));
    return dist_;
  }

  std::size_t ring_count() const { return buckets_.size(); }
  std::size_t footprint_bytes() const {
    std::size_t total = dist_.capacity() * sizeof(double) +
                        buckets_.capacity() * sizeof(std::vector<int>);
    for (const auto& ring : buckets_) total += ring.capacity() * sizeof(int);
    return total;
  }

 private:
  std::vector<double> dist_;
  std::vector<std::vector<int>> buckets_;
};

/// Per-thread Dijkstra workspace for hot paths.
inline DijkstraBuffers& tls_dijkstra_buffers() {
  static thread_local DijkstraBuffers buffers;
  return buffers;
}

/// Sum of distances from `source` over an implicit graph, computed with the
/// thread-local workspace (no per-call allocation).  kInf-propagating: any
/// unreachable node makes the sum kInf.
template <class NeighborFn>
double distance_sum_over(int n, int source, NeighborFn&& neighbor_fn) {
  const auto& dist = tls_dijkstra_buffers().run(
      n, source, std::forward<NeighborFn>(neighbor_fn));
  double total = 0.0;
  for (double d : dist) total += d;
  return total;
}

/// Single-source shortest paths on a materialized graph.
inline SsspResult sssp(const WeightedGraph& g, int source) {
  SsspResult result;
  dijkstra_over(
      g.node_count(), source,
      [&](int u, auto&& visit) {
        for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
      },
      result.dist, &result.parent);
  return result;
}

/// Sum of distances from `source` to all nodes (the paper's distance cost
/// d_G(u, V)); kInf when the graph is disconnected from `source`.
inline double distance_sum(const WeightedGraph& g, int source) {
  return distance_sum_over(g.node_count(), source, [&](int u, auto&& visit) {
    for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
  });
}

}  // namespace gncg
