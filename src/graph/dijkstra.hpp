// Dijkstra single-source shortest paths.
//
// Two entry points:
//  * `sssp(graph, source)` for materialized WeightedGraph instances, and
//  * the templated `dijkstra_over(n, source, neighbor_fn, out)` that runs over
//    an *implicit* graph described by a callback.  The game engine uses the
//    implicit form heavily: evaluating a candidate strategy S_u means running
//    Dijkstra over "everyone else's edges plus u's candidate edges" without
//    materializing that graph (the exact best-response search does this tens
//    of thousands of times per agent).
//
// Weights are non-negative doubles (zero allowed); unreachable nodes get kInf.
#pragma once

#include <queue>
#include <utility>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace gncg {

/// Result of a single-source run: distances (kInf if unreachable) and the
/// predecessor of each node on some shortest path (-1 for source/unreached).
struct SsspResult {
  std::vector<double> dist;
  std::vector<int> parent;
};

namespace detail {

/// Min-heap entry: (distance, node).
using HeapEntry = std::pair<double, int>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace detail

/// Dijkstra over an implicit graph.  `neighbor_fn(u, visit)` must invoke
/// `visit(v, w)` for every edge (u, v) of weight w incident to u.  Fills
/// `dist` (resized to n, kInf-initialized).  If `parent` is non-null it is
/// filled with shortest-path-tree predecessors.
template <class NeighborFn>
void dijkstra_over(int n, int source, NeighborFn&& neighbor_fn,
                   std::vector<double>& dist,
                   std::vector<int>* parent = nullptr) {
  GNCG_CHECK(source >= 0 && source < n, "source out of range");
  dist.assign(static_cast<std::size_t>(n), kInf);
  if (parent != nullptr) parent->assign(static_cast<std::size_t>(n), -1);
  detail::MinHeap heap;
  dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    neighbor_fn(u, [&](int v, double w) {
      GNCG_DASSERT(w >= 0.0);
      const double candidate = d + w;
      if (candidate < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = candidate;
        if (parent != nullptr) (*parent)[static_cast<std::size_t>(v)] = u;
        heap.emplace(candidate, v);
      }
    });
  }
}

/// Single-source shortest paths on a materialized graph.
inline SsspResult sssp(const WeightedGraph& g, int source) {
  SsspResult result;
  dijkstra_over(
      g.node_count(), source,
      [&](int u, auto&& visit) {
        for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
      },
      result.dist, &result.parent);
  return result;
}

/// Sum of distances from `source` to all nodes (the paper's distance cost
/// d_G(u, V)); kInf when the graph is disconnected from `source`.
inline double distance_sum(const WeightedGraph& g, int source) {
  std::vector<double> dist;
  dijkstra_over(
      g.node_count(), source,
      [&](int u, auto&& visit) {
        for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
      },
      dist);
  double total = 0.0;
  for (double d : dist) total += d;
  return total;
}

}  // namespace gncg
