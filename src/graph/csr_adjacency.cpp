#include "graph/csr_adjacency.hpp"

#include <numeric>

#include "support/instrument.hpp"

namespace gncg {

namespace {

/// Compaction trigger: once more than a third of the slab is dead, rewrite
/// it.  The ratio must be strictly below 1/2: a relocation strands old_cap
/// slots while appending 2*old_cap fresh ones, so the dead fraction only
/// approaches 1/2 asymptotically and a 1/2 threshold would never fire.
constexpr std::size_t kCompactionNumerator = 1;
constexpr std::size_t kCompactionDenominator = 3;

}  // namespace

void CsrAdjacency::add_half(int u, int v, double w) {
  const std::size_t ui = static_cast<std::size_t>(u);
  GNCG_DASSERT(ui < deg_.size());
  if (deg_[ui] == cap_[ui]) relocate_grow(ui);
  entries_[start_[ui] + static_cast<std::size_t>(deg_[ui]++)] = {v, w};
}

void CsrAdjacency::remove_half(int u, int v) {
  const std::size_t ui = static_cast<std::size_t>(u);
  GNCG_DASSERT(ui < deg_.size());
  Neighbor* slice = entries_.data() + start_[ui];
  const int deg = deg_[ui];
  for (int i = 0; i < deg; ++i) {
    if (slice[i].to == v) {
      slice[i] = slice[deg - 1];
      --deg_[ui];
      return;
    }
  }
  GNCG_CHECK(false, "half-edge " << u << " -> " << v << " not present");
}

void CsrAdjacency::relocate_grow(std::size_t ui) {
  const int old_cap = cap_[ui];
  const int new_cap = old_cap < 2 ? 4 : old_cap * 2;
  const std::size_t old_start = start_[ui];
  const std::size_t new_start = entries_.size();
  entries_.resize(new_start + static_cast<std::size_t>(new_cap));
  // resize may reallocate, so re-derive the source pointer afterwards
  const Neighbor* src = entries_.data() + old_start;
  Neighbor* dst = entries_.data() + new_start;
  for (int i = 0; i < deg_[ui]; ++i) dst[i] = src[i];
  start_[ui] = new_start;
  cap_[ui] = new_cap;
  dead_ += static_cast<std::size_t>(old_cap);
  ++relocations_;
  GNCG_COUNT(kEngineCsrRelocations);
  if (dead_ * kCompactionDenominator >
      entries_.size() * kCompactionNumerator) {
    compact();
  }
}

void CsrAdjacency::compact() {
  // Rewrite every slice tight-plus-slack in node order into the double
  // buffer, then swap.  Live-entry order within each slice is preserved, so
  // enumeration order is unaffected.
  std::size_t total = 0;
  for (std::size_t ui = 0; ui < deg_.size(); ++ui) {
    total += static_cast<std::size_t>(deg_[ui] + slack_for(deg_[ui]));
  }
  scratch_.resize(total);
  std::size_t cursor = 0;
  for (std::size_t ui = 0; ui < deg_.size(); ++ui) {
    const Neighbor* src = entries_.data() + start_[ui];
    for (int i = 0; i < deg_[ui]; ++i) scratch_[cursor + static_cast<std::size_t>(i)] = src[i];
    start_[ui] = cursor;
    cap_[ui] = deg_[ui] + slack_for(deg_[ui]);
    cursor += static_cast<std::size_t>(cap_[ui]);
  }
  entries_.swap(scratch_);
  dead_ = 0;
  ++compactions_;
  GNCG_COUNT(kEngineCsrCompactions);
}

void CsrAdjacency::begin_rebuild(int n) {
  GNCG_CHECK(n >= 0, "node count must be non-negative");
  const std::size_t ns = static_cast<std::size_t>(n);
  start_.assign(ns, 0);
  deg_.assign(ns, 0);
  cap_.assign(ns, 0);
}

void CsrAdjacency::finish_counts() {
  // deg_ holds the half-edge counts from pass 1; lay slices out in node
  // order with fresh slack and reset deg_ so fill_half can append.
  std::size_t cursor = 0;
  for (std::size_t ui = 0; ui < deg_.size(); ++ui) {
    start_[ui] = cursor;
    cap_[ui] = deg_[ui] + slack_for(deg_[ui]);
    cursor += static_cast<std::size_t>(cap_[ui]);
    deg_[ui] = 0;
  }
  entries_.resize(cursor);
  dead_ = 0;
}

std::size_t CsrAdjacency::footprint_bytes() const {
  return entries_.capacity() * sizeof(Neighbor) +
         scratch_.capacity() * sizeof(Neighbor) +
         start_.capacity() * sizeof(std::size_t) +
         (deg_.capacity() + cap_.capacity()) * sizeof(int);
}

}  // namespace gncg
