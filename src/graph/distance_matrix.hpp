// Dense symmetric distance/weight matrix with infinity support.
//
// Used for host-graph weights, all-pairs shortest path results and metric
// closures.  Storage is a flat row-major n*n vector of doubles.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "support/assert.hpp"

namespace gncg {

/// Flat n x n matrix of doubles with (u, v) accessors.  The game code keeps
/// host weights and APSP results in this form; symmetry is maintained by
/// `set_symmetric` but not enforced on raw `at` writes (APSP fills rows
/// independently in parallel).
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Creates an n x n matrix filled with `fill` (diagonal forced to 0).
  explicit DistanceMatrix(int n, double fill = kInf)
      : n_(n), data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                     fill) {
    GNCG_CHECK(n >= 0, "matrix size must be non-negative");
    for (int v = 0; v < n; ++v) at(v, v) = 0.0;
    note_allocation();
  }

  // Copies are counted by the allocation probe (a copied matrix is a fresh
  // O(n^2) buffer); moves transfer an existing buffer and are not.
  DistanceMatrix(const DistanceMatrix& other)
      : n_(other.n_), data_(other.data_) {
    note_allocation();
  }
  DistanceMatrix& operator=(const DistanceMatrix& other) {
    if (this != &other) {
      n_ = other.n_;
      data_ = other.data_;
      note_allocation();
    }
    return *this;
  }
  DistanceMatrix(DistanceMatrix&&) = default;
  DistanceMatrix& operator=(DistanceMatrix&&) = default;

  int size() const { return n_; }

  /// Process-wide count of matrix cells ever allocated (constructions and
  /// copies; moves excluded).  Tests and benches snapshot this around
  /// implicit-backend workloads to prove that no O(n^2) host weight or
  /// closure matrix is materialized on those paths.
  static std::uint64_t allocated_cells_total() {
    return allocated_cells_.load(std::memory_order_relaxed);
  }

  /// Contiguous row of u (n doubles); stable while the matrix is alive and
  /// unresized.  Lets closure kernels and backends stream a row without
  /// per-entry index arithmetic.
  const double* row(int u) const {
    GNCG_DASSERT(in_range(u));
    return data_.data() +
           static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  }
  double* row(int u) {
    GNCG_DASSERT(in_range(u));
    return data_.data() +
           static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  }

  double& at(int u, int v) {
    GNCG_DASSERT(in_range(u) && in_range(v));
    return data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }

  double at(int u, int v) const {
    GNCG_DASSERT(in_range(u) && in_range(v));
    return data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }

  double operator()(int u, int v) const { return at(u, v); }

  /// Sets both (u, v) and (v, u).
  void set_symmetric(int u, int v, double value) {
    at(u, v) = value;
    at(v, u) = value;
  }

  /// True if every off-diagonal entry is finite.
  bool all_finite() const {
    for (int u = 0; u < n_; ++u)
      for (int v = 0; v < n_; ++v)
        if (u != v && !(at(u, v) < kInf)) return false;
    return true;
  }

  /// Sum over ordered pairs (u, v), u != v.  For a symmetric matrix this is
  /// twice the sum over unordered pairs; it matches the paper's
  /// sum_u d_G(u, V) social distance cost.
  double ordered_pair_sum() const {
    double total = 0.0;
    for (int u = 0; u < n_; ++u)
      for (int v = 0; v < n_; ++v)
        if (u != v) total += at(u, v);
    return total;
  }

  /// Maximum finite off-diagonal entry, or kInf if any pair is unreachable.
  double diameter() const {
    double best = 0.0;
    for (int u = 0; u < n_; ++u)
      for (int v = u + 1; v < n_; ++v) {
        const double d = at(u, v);
        if (!(d < kInf)) return kInf;
        if (d > best) best = d;
      }
    return best;
  }

 private:
  bool in_range(int v) const { return v >= 0 && v < n_; }

  void note_allocation() const {
    if (n_ > 0) {
      allocated_cells_.fetch_add(
          static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_),
          std::memory_order_relaxed);
    }
  }

  static inline std::atomic<std::uint64_t> allocated_cells_{0};

  int n_ = 0;
  std::vector<double> data_;
};

}  // namespace gncg
