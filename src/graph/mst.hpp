// Minimum spanning trees over complete weighted hosts and sparse graphs.
//
// The MST is the natural "edge-cost-only" extreme of the paper's Network
// Design trade-off (alpha -> infinity pushes OPT toward trees) and seeds the
// social-optimum local-search heuristic.
#pragma once

#include <functional>
#include <vector>

#include "graph/distance_matrix.hpp"
#include "graph/weighted_graph.hpp"

namespace gncg {

/// MST of a sparse graph via Kruskal.  Contract-checks connectivity.
std::vector<Edge> kruskal_mst(const WeightedGraph& g);

/// MST of a complete weighted host given by a dense weight matrix via Prim
/// (O(n^2), optimal for complete graphs).  Entries of kInf are treated as
/// forbidden edges; contract-checks that a spanning tree exists.
std::vector<Edge> prim_mst(const DistanceMatrix& weights);

/// Prim over an *implicit* complete host: `weight_fn(u, v)` returns the edge
/// weight (kInf = forbidden).  Same algorithm, scan order and tie-breaking
/// as the matrix overload, so both agree exactly; this is what host-backend
/// consumers (social optimum seeding on geometric hosts) call to avoid
/// materializing an O(n^2) matrix.
std::vector<Edge> prim_mst_over(
    int n, const std::function<double(int, int)>& weight_fn);

/// Total weight of an edge list.
double edge_list_weight(const std::vector<Edge>& edges);

}  // namespace gncg
