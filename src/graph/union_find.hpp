// Disjoint-set union with path halving and union by size.
//
// Used by Kruskal's MST, fast connectivity pre-checks in the social-optimum
// enumerator, and the spanner search.
#pragma once

#include <numeric>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

/// Classic DSU over dense integer ids; near-constant amortized operations.
class UnionFind {
 public:
  explicit UnionFind(int n)
      : parent_(static_cast<std::size_t>(n)),
        size_(static_cast<std::size_t>(n), 1),
        components_(n) {
    GNCG_CHECK(n >= 0, "UnionFind size must be non-negative");
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int v) {
    GNCG_DASSERT(v >= 0 && v < static_cast<int>(parent_.size()));
    while (parent_[static_cast<std::size_t>(v)] != v) {
      // Path halving.
      auto& p = parent_[static_cast<std::size_t>(v)];
      p = parent_[static_cast<std::size_t>(p)];
      v = p;
    }
    return v;
  }

  /// Merges the sets of a and b; returns false when already joined.
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)])
      std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    --components_;
    return true;
  }

  bool connected(int a, int b) { return find(a) == find(b); }

  /// Number of disjoint components.
  int components() const { return components_; }

  /// Size of the component containing v.
  int component_size(int v) { return size_[static_cast<std::size_t>(find(v))]; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int components_ = 0;
};

}  // namespace gncg
