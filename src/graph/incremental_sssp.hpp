// Incremental single-source shortest paths under edge *insertions*.
//
// The exact best-response search descends a DFS over candidate purchase
// subsets; every descent step adds one edge incident to the source, and
// adding an edge can only *decrease* distances.  IncrementalSssp maintains
// the source's distance vector across that walk:
//
//  * `reset(dist)` seeds the structure from a fully computed SSSP vector
//    (one Dijkstra per search, instead of one per visited subset);
//  * `relax_insert(v, cand, neighbor_fn)` applies the candidate distance
//    `cand` to node v (the far endpoint of the inserted edge) and, when it
//    improves, propagates the decrease with a bounded Dijkstra repair over
//    `neighbor_fn` -- only nodes whose distance actually shrinks are touched;
//  * every overwrite is recorded in a change log, so `rollback(checkpoint)`
//    restores the exact pre-insertion vector on DFS backtrack (bitwise: old
//    doubles are stored and replayed in reverse).
//
// Exactness: the repair is decrease-only Dijkstra seeded at the improved
// node.  With non-negative weights and monotone floating-point addition
// (fl(a + w) >= a and nondecreasing in a for w >= 0), the maintained vector
// equals the one a fresh Dijkstra over the augmented graph would produce:
// both are the least fixpoint d(t) = min over edges (x,t) of fl(d(x) + w),
// i.e. the minimum over all source-t paths of the left-to-right rounded path
// sum.  This is what lets the best-response engine stay bit-compatible with
// the naive one-Dijkstra-per-subset search (tests/test_incremental_sssp.cpp
// and the differential fuzz in tests/test_best_response.cpp are the gates).
//
// Bounded-frontier mode (PR 9): `relax_insert` optionally takes a
// FrontierPolicy that truncates the decrease-only propagation (node cap
// and/or admissible radius).  A truncated repair leaves the maintained
// vector a per-node *upper* bound on the true fixpoint (every stored value
// is still the rounded length of a real path) and reports the minimum heap
// key F left unexplored.  The truncation invariant callers build floors on:
//
//     true(y) >= min(dist(y), F)   for every node y,
//
// because valid pop keys are nondecreasing, so every relaxation the cut
// frontier could still have produced writes a value >= F.  When the policy
// never fires the bounded loop executes the exact same instruction sequence
// as the unbounded one, so the vector is bitwise equal to the unbounded
// repair (and hence to a fresh Dijkstra) -- the common case when a probe's
// improvement is spatially local.  Rollback works identically in both
// modes: every overwrite is logged before the bound is consulted.
//
// Not thread-safe; parallel searches own one instance per branch.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"

namespace gncg {

/// Truncation policy for a bounded-frontier repair.  Default-constructed =
/// unbounded (the exact repair).
struct FrontierPolicy {
  /// Maximum distance overwrites per repair; 0 = unbounded.  Checked at pop
  /// time, so a repair performs at most node_cap + one adjacency list of
  /// relaxations.
  std::size_t node_cap = 0;
  /// Admissible radius: the repair stops once the cheapest unexplored heap
  /// key exceeds it (improvements past the radius are cut).  Derive it from
  /// the inserted edge's weight plus a locality bound (e.g. the spatial
  /// oracle's ring lower bound); kInf = unbounded.
  double radius = kInf;

  bool bounded() const { return node_cap > 0 || radius < kInf; }
};

/// Outcome of one (possibly bounded) relax_insert.
struct RepairOutcome {
  /// True when the frontier policy cut the propagation: dist() is then a
  /// per-node upper bound and `frontier_min` carries the floor key.  False
  /// means the repair ran to the exact fixpoint (bitwise equal to the
  /// unbounded repair), the slack-0 case.
  bool truncated = false;
  /// Minimum heap key left unexplored at truncation (kInf when exact):
  /// true(y) >= min(dist(y), frontier_min) for every node y.
  double frontier_min = kInf;
};

class IncrementalSssp {
 public:
  /// Log position; pass to rollback() to undo everything recorded after it.
  using Checkpoint = std::size_t;

  /// Seeds from a computed SSSP vector (copied; the caller keeps the
  /// original for further branches).  Clears the change log.
  void reset(const std::vector<double>& dist);

  const std::vector<double>& dist() const { return dist_; }

  Checkpoint checkpoint() const { return log_.size(); }

  /// Offers the candidate distance `cand` to node v (for an inserted edge
  /// (source, v) of weight w, pass cand = w: the source's distance is 0 and
  /// never changes, so the repair never needs the new edge itself).  When it
  /// improves, propagates the decrease through `neighbor_fn(x, visit)` --
  /// which must enumerate the *rest* of the graph's edges (the environment;
  /// previously inserted source edges need no re-enumeration for the same
  /// reason the new one doesn't).  Every overwritten distance is logged.
  template <class NeighborFn>
  void relax_insert(int v, double cand, NeighborFn&& neighbor_fn) {
    relax_insert_impl<false>(v, cand, FrontierPolicy{}, neighbor_fn);
  }

  /// Bounded-frontier variant: the repair additionally honors `policy`,
  /// truncating the propagation once the node cap or the admissible radius
  /// is hit (see the file comment for the floor invariant).  With an
  /// unbounded policy this is exactly relax_insert (same instruction
  /// sequence, outcome never truncated).
  template <class NeighborFn>
  RepairOutcome relax_insert(int v, double cand, const FrontierPolicy& policy,
                             NeighborFn&& neighbor_fn) {
    if (!policy.bounded())
      return relax_insert_impl<false>(v, cand, policy, neighbor_fn);
    return relax_insert_impl<true>(v, cand, policy, neighbor_fn);
  }

  /// Restores every distance overwritten since `mark`, newest first (a node
  /// improved twice ends up at its earliest logged value).
  void rollback(Checkpoint mark);

  std::size_t footprint_bytes() const {
    return dist_.capacity() * sizeof(double) +
           log_.capacity() * sizeof(std::pair<int, double>) +
           heap_.capacity() * sizeof(detail::HeapEntry);
  }

 private:
  /// Shared repair body.  `Bounded` is a compile-time switch so the exact
  /// path carries no policy checks (identical machine code to the
  /// pre-bounded kernel).  The cap/radius tests run at pop time against the
  /// heap minimum, so `frontier_min` is exactly the cheapest improvement
  /// left unexplored and the relaxation count overshoots the cap by at most
  /// one adjacency list.
  template <bool Bounded, class NeighborFn>
  RepairOutcome relax_insert_impl(int v, double cand,
                                  const FrontierPolicy& policy,
                                  NeighborFn&& neighbor_fn) {
    RepairOutcome outcome;
    const std::size_t vi = static_cast<std::size_t>(v);
    GNCG_DASSERT(vi < dist_.size());
    if (!(cand < dist_[vi])) return outcome;
    GNCG_COUNT(kSsspRepairs);
    if constexpr (Bounded) GNCG_COUNT(kSsspBoundedRepairs);
    GNCG_IF_INSTRUMENT(std::uint64_t relaxations = 1;)
    [[maybe_unused]] std::size_t writes = 1;  // algorithmic cap, not metrics
    log_.emplace_back(v, dist_[vi]);
    dist_[vi] = cand;
    heap_.clear();
    push(cand, v);
    while (!heap_.empty()) {
      if constexpr (Bounded) {
        // heap_[0] is the min entry (std::push_heap with greater<>).  A
        // stale minimum only lowers frontier_min, which stays admissible.
        const double top = heap_[0].first;
        if (top > policy.radius ||
            (policy.node_cap > 0 && writes >= policy.node_cap)) {
          outcome.truncated = true;
          outcome.frontier_min = top;
          heap_.clear();
          GNCG_COUNT(kSsspBoundedTruncations);
          break;
        }
      }
      const auto [d, x] = pop();
      if (d > dist_[static_cast<std::size_t>(x)]) continue;  // stale entry
      neighbor_fn(x, [&](int y, double w) {
        GNCG_DASSERT(w >= 0.0);
        const double candidate = d + w;
        const std::size_t yi = static_cast<std::size_t>(y);
        if (candidate < dist_[yi]) {
          GNCG_IF_INSTRUMENT(++relaxations;)
          if constexpr (Bounded) ++writes;
          log_.emplace_back(y, dist_[yi]);
          dist_[yi] = candidate;
          push(candidate, y);
        }
      });
    }
    if (log_.size() > log_peak_) log_peak_ = log_.size();
    GNCG_COUNT_N(kSsspRepairRelaxations, relaxations);
    return outcome;
  }

  void push(double d, int v) {
    heap_.emplace_back(d, v);
    if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  detail::HeapEntry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const detail::HeapEntry entry = heap_.back();
    heap_.pop_back();
    return entry;
  }

  std::vector<double> dist_;
  std::vector<std::pair<int, double>> log_;
  std::vector<detail::HeapEntry> heap_;
  std::size_t log_peak_ = 0;   ///< high-water marks of the previous search
  std::size_t heap_peak_ = 0;
  /// Decaying need estimates driving reset()'s shrink policy: the estimate
  /// only halves per reset, so a workload alternating small and large
  /// searches (the ladder's tier-1 probes vs tier-2 branch floods) keeps
  /// its capacity instead of shrink-then-regrowing every other reset.
  std::size_t log_need_ = 0;
  std::size_t heap_need_ = 0;
};

}  // namespace gncg
