// Incremental single-source shortest paths under edge *insertions*.
//
// The exact best-response search descends a DFS over candidate purchase
// subsets; every descent step adds one edge incident to the source, and
// adding an edge can only *decrease* distances.  IncrementalSssp maintains
// the source's distance vector across that walk:
//
//  * `reset(dist)` seeds the structure from a fully computed SSSP vector
//    (one Dijkstra per search, instead of one per visited subset);
//  * `relax_insert(v, cand, neighbor_fn)` applies the candidate distance
//    `cand` to node v (the far endpoint of the inserted edge) and, when it
//    improves, propagates the decrease with a bounded Dijkstra repair over
//    `neighbor_fn` -- only nodes whose distance actually shrinks are touched;
//  * every overwrite is recorded in a change log, so `rollback(checkpoint)`
//    restores the exact pre-insertion vector on DFS backtrack (bitwise: old
//    doubles are stored and replayed in reverse).
//
// Exactness: the repair is decrease-only Dijkstra seeded at the improved
// node.  With non-negative weights and monotone floating-point addition
// (fl(a + w) >= a and nondecreasing in a for w >= 0), the maintained vector
// equals the one a fresh Dijkstra over the augmented graph would produce:
// both are the least fixpoint d(t) = min over edges (x,t) of fl(d(x) + w),
// i.e. the minimum over all source-t paths of the left-to-right rounded path
// sum.  This is what lets the best-response engine stay bit-compatible with
// the naive one-Dijkstra-per-subset search (tests/test_incremental_sssp.cpp
// and the differential fuzz in tests/test_best_response.cpp are the gates).
//
// Not thread-safe; parallel searches own one instance per branch.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"

namespace gncg {

class IncrementalSssp {
 public:
  /// Log position; pass to rollback() to undo everything recorded after it.
  using Checkpoint = std::size_t;

  /// Seeds from a computed SSSP vector (copied; the caller keeps the
  /// original for further branches).  Clears the change log.
  void reset(const std::vector<double>& dist);

  const std::vector<double>& dist() const { return dist_; }

  Checkpoint checkpoint() const { return log_.size(); }

  /// Offers the candidate distance `cand` to node v (for an inserted edge
  /// (source, v) of weight w, pass cand = w: the source's distance is 0 and
  /// never changes, so the repair never needs the new edge itself).  When it
  /// improves, propagates the decrease through `neighbor_fn(x, visit)` --
  /// which must enumerate the *rest* of the graph's edges (the environment;
  /// previously inserted source edges need no re-enumeration for the same
  /// reason the new one doesn't).  Every overwritten distance is logged.
  template <class NeighborFn>
  void relax_insert(int v, double cand, NeighborFn&& neighbor_fn) {
    const std::size_t vi = static_cast<std::size_t>(v);
    GNCG_DASSERT(vi < dist_.size());
    if (!(cand < dist_[vi])) return;
    GNCG_COUNT(kSsspRepairs);
    GNCG_IF_INSTRUMENT(std::uint64_t relaxations = 1;)
    log_.emplace_back(v, dist_[vi]);
    dist_[vi] = cand;
    heap_.clear();
    push(cand, v);
    while (!heap_.empty()) {
      const auto [d, x] = pop();
      if (d > dist_[static_cast<std::size_t>(x)]) continue;  // stale entry
      neighbor_fn(x, [&](int y, double w) {
        GNCG_DASSERT(w >= 0.0);
        const double candidate = d + w;
        const std::size_t yi = static_cast<std::size_t>(y);
        if (candidate < dist_[yi]) {
          GNCG_IF_INSTRUMENT(++relaxations;)
          log_.emplace_back(y, dist_[yi]);
          dist_[yi] = candidate;
          push(candidate, y);
        }
      });
    }
    if (log_.size() > log_peak_) log_peak_ = log_.size();
    GNCG_COUNT_N(kSsspRepairRelaxations, relaxations);
  }

  /// Restores every distance overwritten since `mark`, newest first (a node
  /// improved twice ends up at its earliest logged value).
  void rollback(Checkpoint mark);

  std::size_t footprint_bytes() const {
    return dist_.capacity() * sizeof(double) +
           log_.capacity() * sizeof(std::pair<int, double>) +
           heap_.capacity() * sizeof(detail::HeapEntry);
  }

 private:
  void push(double d, int v) {
    heap_.emplace_back(d, v);
    if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  detail::HeapEntry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const detail::HeapEntry entry = heap_.back();
    heap_.pop_back();
    return entry;
  }

  std::vector<double> dist_;
  std::vector<std::pair<int, double>> log_;
  std::vector<detail::HeapEntry> heap_;
  std::size_t log_peak_ = 0;   ///< high-water marks of the previous search,
  std::size_t heap_peak_ = 0;  ///< driving reset()'s shrink policy
};

}  // namespace gncg
