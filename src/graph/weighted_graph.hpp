// Weighted undirected graph: the basic substrate every game network, host
// graph view, optimum and spanner in gncg is built on.
//
// Design notes:
//  * Nodes are dense integer ids [0, n).
//  * Edges are undirected with non-negative double weights (0 is allowed:
//    the paper's general GNCG permits zero-weight edges, see the Theorem 20
//    remark instance).  Parallel edges are rejected; self-loops are rejected.
//  * Adjacency is stored per node as a small vector of (neighbor, weight)
//    entries, which is the right trade-off for the n <= a-few-hundred graphs
//    produced by the constructions, and keeps Dijkstra cache-friendly.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

/// Infinity marker for distances/weights (disconnection, forbidden edges).
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// An undirected edge (u, v, w) with u < v normalized on insertion.
struct Edge {
  int u = 0;
  int v = 0;
  double weight = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Adjacency entry: neighbor id plus the connecting edge weight.
struct Neighbor {
  int to = 0;
  double weight = 0.0;
};

/// Mutable weighted undirected simple graph.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Creates an edgeless graph on `n` nodes.
  explicit WeightedGraph(int n) : adjacency_(static_cast<std::size_t>(n)) {
    GNCG_CHECK(n >= 0, "node count must be non-negative");
  }

  /// Builds a graph from an explicit edge list.
  static WeightedGraph from_edges(int n, const std::vector<Edge>& edges) {
    WeightedGraph g(n);
    for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
    return g;
  }

  int node_count() const { return static_cast<int>(adjacency_.size()); }
  int edge_count() const { return edge_count_; }

  /// Adds edge (u, v) with weight w.  Rejects self-loops, duplicate edges,
  /// negative and non-finite weights (infinite weights model *forbidden*
  /// edges and must not be materialized).
  void add_edge(int u, int v, double w) {
    check_node(u);
    check_node(v);
    GNCG_CHECK(u != v, "self-loops are not allowed");
    GNCG_CHECK(w >= 0.0, "edge weights must be non-negative");
    GNCG_CHECK(w < kInf, "infinite-weight edges cannot be materialized");
    GNCG_CHECK(!has_edge(u, v), "duplicate edge (" << u << "," << v << ")");
    adjacency_[static_cast<std::size_t>(u)].push_back({v, w});
    adjacency_[static_cast<std::size_t>(v)].push_back({u, w});
    ++edge_count_;
    total_weight_ += w;
  }

  /// Removes edge (u, v); contract-checks that it exists.
  void remove_edge(int u, int v) {
    check_node(u);
    check_node(v);
    GNCG_CHECK(has_edge(u, v), "edge (" << u << "," << v << ") not present");
    total_weight_ -= edge_weight(u, v);
    erase_half(u, v);
    erase_half(v, u);
    --edge_count_;
  }

  bool has_edge(int u, int v) const {
    check_node(u);
    check_node(v);
    for (const auto& nb : adjacency_[static_cast<std::size_t>(u)])
      if (nb.to == v) return true;
    return false;
  }

  /// Weight of edge (u, v); kInf when the edge is absent.
  double edge_weight(int u, int v) const {
    check_node(u);
    check_node(v);
    for (const auto& nb : adjacency_[static_cast<std::size_t>(u)])
      if (nb.to == v) return nb.weight;
    return kInf;
  }

  std::span<const Neighbor> neighbors(int u) const {
    check_node(u);
    return adjacency_[static_cast<std::size_t>(u)];
  }

  int degree(int u) const {
    check_node(u);
    return static_cast<int>(adjacency_[static_cast<std::size_t>(u)].size());
  }

  /// Sum of all edge weights (each undirected edge counted once).
  double total_weight() const { return total_weight_; }

  /// Edge list with u < v, sorted lexicographically (stable for tests).
  std::vector<Edge> edges() const {
    std::vector<Edge> out;
    out.reserve(static_cast<std::size_t>(edge_count_));
    for (int u = 0; u < node_count(); ++u)
      for (const auto& nb : adjacency_[static_cast<std::size_t>(u)])
        if (u < nb.to) out.push_back({u, nb.to, nb.weight});
    return out;
  }

 private:
  void check_node(int v) const {
    GNCG_CHECK(v >= 0 && v < node_count(),
               "node " << v << " out of range [0," << node_count() << ")");
  }

  void erase_half(int u, int v) {
    auto& list = adjacency_[static_cast<std::size_t>(u)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].to == v) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
  }

  std::vector<std::vector<Neighbor>> adjacency_;
  int edge_count_ = 0;
  double total_weight_ = 0.0;
};

}  // namespace gncg
