// Graph spanners.
//
// Spanners are the structural backbone of the paper's bounds:
//  * Lemma 1: every Add-only Equilibrium is an (alpha+1)-spanner of the host.
//  * Lemma 2: the social optimum is an (alpha/2+1)-spanner.
//  * Theorem 5: for 1/2 <= alpha <= 1 in the 1-2-GNCG, a *minimum-weight
//    3/2-spanner* admits an edge-ownership assignment that is a Nash
//    equilibrium -- which is how the paper proves NE existence there.
//
// This module provides stretch measurement, the classic greedy t-spanner,
// and an exact minimum-weight 3/2-spanner solver for 1-2 hosts (used by the
// Theorem 5 experiments).  The exact solver exploits the 1-2 structure: all
// 1-edges are forced (Lemma 5), and any path of length <= 3 contains at most
// one 2-edge, which makes the branch-and-bound fix-set per violated pair
// small.
#pragma once

#include <functional>
#include <vector>

#include "graph/distance_matrix.hpp"
#include "graph/weighted_graph.hpp"

namespace gncg {

/// Maximum multiplicative stretch max_{u<v} d_sub(u,v) / d_host(u,v).
/// Pairs with d_host == 0 contribute 1 if d_sub == 0 and kInf otherwise.
/// Returns kInf when the subgraph disconnects any pair the host connects.
double max_stretch(const DistanceMatrix& host_dist,
                   const DistanceMatrix& sub_dist);

/// Same kernel over an *implicit* host metric: `host_dist_fn(u, v)` returns
/// d_host(u, v).  Host-backend consumers (spanner_bounds) use this so
/// geometric hosts never materialize a closure matrix.
double max_stretch_over(int n,
                        const std::function<double(int, int)>& host_dist_fn,
                        const DistanceMatrix& sub_dist);

/// True when sub is a k-spanner of host: d_sub <= k * d_host for all pairs
/// (with an eps slack for float comparisons).
bool is_k_spanner(const DistanceMatrix& host_dist,
                  const DistanceMatrix& sub_dist, double k,
                  double eps = 1e-9);

/// Althoefer-style greedy t-spanner of a complete weighted host: scan edges
/// by non-decreasing weight, keep an edge iff the current spanner distance
/// between its endpoints exceeds t * w.  Guarantees stretch <= t.
std::vector<Edge> greedy_spanner(const DistanceMatrix& weights, double t);

/// Exact minimum-weight 3/2-spanner of a complete 1-2 host graph.
/// Requires every off-diagonal weight to be 1 or 2 (contract-checked).
/// Returns the edge list: all 1-edges plus a minimum set of 2-edges such
/// that every non-adjacent pair is at distance <= 3.  Intended for small n
/// (branch and bound; practical to n around 16).
std::vector<Edge> min_weight_three_halves_spanner_onetwo(
    const DistanceMatrix& weights);

}  // namespace gncg
