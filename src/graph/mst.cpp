#include "graph/mst.hpp"

#include <algorithm>

#include "graph/union_find.hpp"
#include "support/assert.hpp"

namespace gncg {

std::vector<Edge> kruskal_mst(const WeightedGraph& g) {
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.weight < b.weight;
  });
  UnionFind dsu(g.node_count());
  std::vector<Edge> tree;
  tree.reserve(static_cast<std::size_t>(std::max(0, g.node_count() - 1)));
  for (const auto& e : edges) {
    if (dsu.unite(e.u, e.v)) tree.push_back(e);
  }
  GNCG_CHECK(dsu.components() == 1 || g.node_count() <= 1,
             "kruskal_mst requires a connected graph");
  return tree;
}

std::vector<Edge> prim_mst_over(
    int n, const std::function<double(int, int)>& weight_fn) {
  std::vector<Edge> tree;
  if (n <= 1) return tree;
  std::vector<char> in_tree(static_cast<std::size_t>(n), 0);
  std::vector<double> best(static_cast<std::size_t>(n), kInf);
  std::vector<int> link(static_cast<std::size_t>(n), -1);
  best[0] = 0.0;
  for (int round = 0; round < n; ++round) {
    int u = -1;
    double u_key = kInf;
    for (int v = 0; v < n; ++v) {
      if (!in_tree[static_cast<std::size_t>(v)] &&
          best[static_cast<std::size_t>(v)] <= u_key) {
        u = v;
        u_key = best[static_cast<std::size_t>(v)];
      }
    }
    GNCG_CHECK(u >= 0 && u_key < kInf,
               "prim_mst: host graph admits no spanning tree");
    in_tree[static_cast<std::size_t>(u)] = 1;
    if (link[static_cast<std::size_t>(u)] >= 0) {
      const int p = link[static_cast<std::size_t>(u)];
      tree.push_back({std::min(p, u), std::max(p, u), weight_fn(p, u)});
    }
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)] || v == u) continue;
      const double w = weight_fn(u, v);
      if (w < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = w;
        link[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return tree;
}

std::vector<Edge> prim_mst(const DistanceMatrix& weights) {
  return prim_mst_over(weights.size(), [&weights](int u, int v) {
    return weights.at(u, v);
  });
}

double edge_list_weight(const std::vector<Edge>& edges) {
  double total = 0.0;
  for (const auto& e : edges) total += e.weight;
  return total;
}

}  // namespace gncg
