#include "npc/set_cover.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"

namespace gncg {

namespace {

std::uint32_t set_mask(const SetCoverInstance& instance, std::size_t index) {
  std::uint32_t mask = 0;
  for (int e : instance.sets[index]) {
    GNCG_DASSERT(e >= 0 && e < instance.universe_size);
    mask |= std::uint32_t{1} << e;
  }
  return mask;
}

struct CoverSearch {
  const SetCoverInstance* instance = nullptr;
  std::vector<std::uint32_t> masks;
  std::uint32_t full = 0;
  std::vector<int> chosen;
  std::vector<int> best;
  bool feasible = false;

  void search(std::uint32_t covered) {
    if (feasible && chosen.size() + 1 > best.size()) return;  // bound
    if (covered == full) {
      if (!feasible || chosen.size() < best.size()) {
        best = chosen;
        feasible = true;
      }
      return;
    }
    // Branch on the uncovered element with the fewest covering sets.
    int branch_element = -1;
    std::size_t fewest = masks.size() + 1;
    for (int e = 0; e < instance->universe_size; ++e) {
      if ((covered >> e) & 1U) continue;
      std::size_t covering = 0;
      for (std::size_t s = 0; s < masks.size(); ++s)
        if ((masks[s] >> e) & 1U) ++covering;
      if (covering < fewest) {
        fewest = covering;
        branch_element = e;
      }
    }
    if (fewest == 0) return;  // element uncoverable on this branch
    for (std::size_t s = 0; s < masks.size(); ++s) {
      if (!((masks[s] >> branch_element) & 1U)) continue;
      chosen.push_back(static_cast<int>(s));
      search(covered | masks[s]);
      chosen.pop_back();
    }
  }
};

}  // namespace

bool is_cover(const SetCoverInstance& instance,
              const std::vector<int>& chosen) {
  std::vector<char> covered(static_cast<std::size_t>(instance.universe_size), 0);
  for (int s : chosen) {
    GNCG_CHECK(s >= 0 && s < static_cast<int>(instance.set_count()),
               "set index out of range");
    for (int e : instance.sets[static_cast<std::size_t>(s)])
      covered[static_cast<std::size_t>(e)] = 1;
  }
  for (char c : covered)
    if (!c) return false;
  return true;
}

SetCoverSolution exact_min_set_cover(const SetCoverInstance& instance) {
  GNCG_CHECK(instance.universe_size >= 0 && instance.universe_size <= 30,
             "exact set cover limited to 30 elements");
  CoverSearch search;
  search.instance = &instance;
  search.masks.reserve(instance.set_count());
  for (std::size_t s = 0; s < instance.set_count(); ++s)
    search.masks.push_back(set_mask(instance, s));
  search.full = instance.universe_size == 0
                    ? 0
                    : (instance.universe_size == 30
                           ? 0x3fffffffU
                           : (std::uint32_t{1} << instance.universe_size) - 1);
  search.search(0);
  SetCoverSolution solution;
  solution.feasible = search.feasible;
  solution.chosen = search.best;
  return solution;
}

SetCoverSolution greedy_set_cover(const SetCoverInstance& instance) {
  std::vector<std::uint32_t> masks;
  masks.reserve(instance.set_count());
  for (std::size_t s = 0; s < instance.set_count(); ++s)
    masks.push_back(set_mask(instance, s));
  const std::uint32_t full =
      instance.universe_size == 0
          ? 0
          : (std::uint32_t{1} << instance.universe_size) - 1;
  SetCoverSolution solution;
  std::uint32_t covered = 0;
  while (covered != full) {
    std::size_t best_set = masks.size();
    int best_gain = 0;
    for (std::size_t s = 0; s < masks.size(); ++s) {
      const int gain = std::popcount(masks[s] & ~covered);
      if (gain > best_gain) {
        best_gain = gain;
        best_set = s;
      }
    }
    if (best_set == masks.size()) return solution;  // infeasible
    covered |= masks[best_set];
    solution.chosen.push_back(static_cast<int>(best_set));
  }
  solution.feasible = true;
  return solution;
}

SetCoverInstance random_set_cover(int universe_size, int set_count,
                                  double p_member, Rng& rng) {
  GNCG_CHECK(universe_size >= 1 && set_count >= 1, "degenerate instance");
  SetCoverInstance instance;
  instance.universe_size = universe_size;
  instance.sets.assign(static_cast<std::size_t>(set_count), {});
  std::vector<char> covered(static_cast<std::size_t>(universe_size), 0);
  for (auto& set : instance.sets) {
    for (int e = 0; e < universe_size; ++e) {
      if (rng.bernoulli(p_member)) {
        set.push_back(e);
        covered[static_cast<std::size_t>(e)] = 1;
      }
    }
    if (set.empty()) {
      const int e = static_cast<int>(
          rng.uniform_below(static_cast<std::uint64_t>(universe_size)));
      set.push_back(e);
      covered[static_cast<std::size_t>(e)] = 1;
    }
  }
  for (int e = 0; e < universe_size; ++e) {
    if (!covered[static_cast<std::size_t>(e)]) {
      auto& set = instance.sets[rng.uniform_below(
          static_cast<std::uint64_t>(set_count))];
      set.push_back(e);
      std::sort(set.begin(), set.end());
    }
  }
  return instance;
}

}  // namespace gncg
