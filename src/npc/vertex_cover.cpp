#include "npc/vertex_cover.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace gncg {

bool is_vertex_cover(const VertexCoverInstance& instance,
                     const std::vector<int>& cover) {
  std::vector<char> in_cover(static_cast<std::size_t>(instance.n), 0);
  for (int v : cover) {
    GNCG_CHECK(v >= 0 && v < instance.n, "cover vertex out of range");
    in_cover[static_cast<std::size_t>(v)] = 1;
  }
  for (const auto& [u, v] : instance.edges)
    if (!in_cover[static_cast<std::size_t>(u)] &&
        !in_cover[static_cast<std::size_t>(v)])
      return false;
  return true;
}

namespace {

struct VcSearch {
  const VertexCoverInstance* instance = nullptr;
  std::vector<char> in_cover;
  std::vector<int> best;
  int chosen = 0;

  /// First edge not covered by the current partial cover; -1 if none.
  int uncovered_edge() const {
    for (std::size_t i = 0; i < instance->edges.size(); ++i) {
      const auto& [u, v] = instance->edges[i];
      if (!in_cover[static_cast<std::size_t>(u)] &&
          !in_cover[static_cast<std::size_t>(v)])
        return static_cast<int>(i);
    }
    return -1;
  }

  void search() {
    if (chosen >= static_cast<int>(best.size())) return;  // bound
    const int edge = uncovered_edge();
    if (edge < 0) {
      best.clear();
      for (int v = 0; v < instance->n; ++v)
        if (in_cover[static_cast<std::size_t>(v)]) best.push_back(v);
      return;
    }
    const auto& [u, v] = instance->edges[static_cast<std::size_t>(edge)];
    for (int pick : {u, v}) {
      in_cover[static_cast<std::size_t>(pick)] = 1;
      ++chosen;
      search();
      --chosen;
      in_cover[static_cast<std::size_t>(pick)] = 0;
    }
  }
};

}  // namespace

std::vector<int> exact_min_vertex_cover(const VertexCoverInstance& instance) {
  VcSearch search;
  search.instance = &instance;
  search.in_cover.assign(static_cast<std::size_t>(instance.n), 0);
  // Start from the trivial all-vertices cover as the incumbent.
  search.best.resize(static_cast<std::size_t>(instance.n));
  for (int v = 0; v < instance.n; ++v)
    search.best[static_cast<std::size_t>(v)] = v;
  search.search();
  return search.best;
}

std::vector<int> two_approx_vertex_cover(const VertexCoverInstance& instance) {
  std::vector<char> matched(static_cast<std::size_t>(instance.n), 0);
  std::vector<int> cover;
  for (const auto& [u, v] : instance.edges) {
    if (matched[static_cast<std::size_t>(u)] ||
        matched[static_cast<std::size_t>(v)])
      continue;
    matched[static_cast<std::size_t>(u)] = 1;
    matched[static_cast<std::size_t>(v)] = 1;
    cover.push_back(u);
    cover.push_back(v);
  }
  return cover;
}

VertexCoverInstance random_subcubic_graph(int n, Rng& rng) {
  GNCG_CHECK(n >= 2, "need at least two vertices");
  VertexCoverInstance instance;
  instance.n = n;
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<char>> adjacent(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));

  // Random spanning path-ish tree respecting the degree cap: attach each new
  // vertex to a uniformly random earlier vertex with remaining budget.
  for (int v = 1; v < n; ++v) {
    std::vector<int> hosts;
    for (int h = 0; h < v; ++h)
      if (degree[static_cast<std::size_t>(h)] < 3) hosts.push_back(h);
    GNCG_CHECK(!hosts.empty(), "degree budget exhausted (cannot happen)");
    const int h = hosts[rng.uniform_below(hosts.size())];
    instance.edges.emplace_back(h, v);
    ++degree[static_cast<std::size_t>(h)];
    ++degree[static_cast<std::size_t>(v)];
    adjacent[static_cast<std::size_t>(h)][static_cast<std::size_t>(v)] = 1;
    adjacent[static_cast<std::size_t>(v)][static_cast<std::size_t>(h)] = 1;
  }
  // Extra edges while degree budgets allow (about n/2 attempts).
  const int attempts = n;
  for (int i = 0; i < attempts; ++i) {
    const int u = static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n)));
    if (u == v || adjacent[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)])
      continue;
    if (degree[static_cast<std::size_t>(u)] >= 3 ||
        degree[static_cast<std::size_t>(v)] >= 3)
      continue;
    instance.edges.emplace_back(std::min(u, v), std::max(u, v));
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
    adjacent[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = 1;
    adjacent[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] = 1;
  }
  return instance;
}

}  // namespace gncg
