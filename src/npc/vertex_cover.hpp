// Minimum Vertex Cover: exact branch-and-bound and the matching-based
// 2-approximation.
//
// Theorem 4 reduces Vertex Cover on subcubic graphs to the NE *decision*
// problem of the 1-2-GNCG (the first hardness-of-recognizing-equilibria
// result in the NCG literature).  The experiments instantiate that gadget
// from random subcubic graphs and validate agent u's best response against
// this exact solver.
#pragma once

#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace gncg {

/// A plain undirected graph for the cover problem.
struct VertexCoverInstance {
  int n = 0;
  std::vector<std::pair<int, int>> edges;
};

/// True when `cover` touches every edge.
bool is_vertex_cover(const VertexCoverInstance& instance,
                     const std::vector<int>& cover);

/// Exact minimum vertex cover via branching on an endpoint of an uncovered
/// edge, with incumbent pruning.  Practical to ~30 vertices at our scales.
std::vector<int> exact_min_vertex_cover(const VertexCoverInstance& instance);

/// Maximal-matching 2-approximation.
std::vector<int> two_approx_vertex_cover(const VertexCoverInstance& instance);

/// Random connected graph with maximum degree <= 3 (the class for which
/// minimum vertex cover is NP-hard, as used by Theorem 4): a random
/// spanning tree with degree budget, plus random extra edges while budgets
/// allow.
VertexCoverInstance random_subcubic_graph(int n, Rng& rng);

}  // namespace gncg
