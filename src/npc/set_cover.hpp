// Minimum Set Cover: exact branch-and-bound and the greedy approximation.
//
// The paper's best-response hardness proofs (Theorem 13 for tree metrics,
// Theorem 16 for points in R^d) reduce FROM Minimum Set Cover: an agent's
// best response buys exactly the set-nodes of a minimum cover.  The
// experiments run the reduction forwards -- building game gadgets from set
// systems -- and validate them against this exact solver.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace gncg {

/// A set-cover instance: universe {0..universe_size-1} and a family of sets.
struct SetCoverInstance {
  int universe_size = 0;
  std::vector<std::vector<int>> sets;

  std::size_t set_count() const { return sets.size(); }
};

/// Indices of chosen sets.
struct SetCoverSolution {
  std::vector<int> chosen;
  bool feasible = false;
};

/// True when the chosen sets cover the whole universe.
bool is_cover(const SetCoverInstance& instance, const std::vector<int>& chosen);

/// Exact minimum cover by branch and bound (element-driven branching).
/// Universe limited to 30 elements (bitmask state).
SetCoverSolution exact_min_set_cover(const SetCoverInstance& instance);

/// Classic greedy (largest-uncovered-first); ln(n)-approximation.
SetCoverSolution greedy_set_cover(const SetCoverInstance& instance);

/// Random instance: each (set, element) membership with probability
/// `p_member`; elements left uncovered are patched into a random set so the
/// instance is always feasible.  Empty sets are patched with one element.
SetCoverInstance random_set_cover(int universe_size, int set_count,
                                  double p_member, Rng& rng);

}  // namespace gncg
