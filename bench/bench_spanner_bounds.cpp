// Experiment E15 -- Lemmas 1 + 2 and the Theorem 1 sigma analysis.
//
// Paper claims: any Add-only Equilibrium is an (alpha+1)-spanner of the
// host (Lemma 1); the social optimum is an (alpha/2+1)-spanner (Lemma 2);
// on metric hosts the per-pair sigma ratio between any NE and OPT is at
// most (alpha+2)/2 (the Theorem 1 proof engine).
//
// Reproduction: random hosts across model classes; measured max stretch
// and max sigma against the three bounds.
#include <iostream>

#include "bench_util.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "core/spanner_bounds.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E15 | Lemmas 1+2, Theorem 1: spanner and sigma bounds");
  Rng rng(15);

  ConsoleTable table({"model", "alpha", "AE stretch (max)", "bound a+1",
                      "OPT stretch (max)", "bound a/2+1", "NE sigma (max)",
                      "bound (a+2)/2", "verdicts"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    for (int flavor = 0; flavor < 2; ++flavor) {
      const std::string model = flavor == 0 ? "M-GNCG" : "1-2-GNCG";
      RunningStats ae_stretch, opt_stretch, ne_sigma;
      for (int trial = 0; trial < 4; ++trial) {
        const Game game(flavor == 0
                            ? random_metric_host(6, rng)
                            : random_one_two_host(6, 0.5, rng),
                        alpha);
        // Add-only equilibrium from a connected start (Lemma 1 domain).
        DynamicsOptions add_only;
        add_only.rule = MoveRule::kBestAddition;
        add_only.max_moves = 5000;
        add_only.seed = rng();
        const auto ae =
            run_dynamics(game, random_profile(game, rng), add_only);
        if (ae.converged)
          ae_stretch.add(profile_stretch(game, ae.final_profile));

        const auto opt = exact_social_optimum(game);
        opt_stretch.add(network_stretch(game, opt.edges));

        DynamicsOptions best_response;
        best_response.max_moves = 4000;
        best_response.seed = rng();
        const auto ne =
            run_dynamics(game, random_profile(game, rng), best_response);
        if (ne.converged && is_nash_equilibrium(game, ne.final_profile))
          ne_sigma.add(max_pair_sigma(game, ne.final_profile, opt.edges));
      }
      const std::string verdicts =
          bench::bound_verdict(ae_stretch.max(), alpha + 1.0) + "/" +
          bench::bound_verdict(opt_stretch.max(), alpha / 2.0 + 1.0) + "/" +
          (ne_sigma.count() > 0
               ? bench::bound_verdict(ne_sigma.max(), paper::metric_poa(alpha))
               : "n/a");
      table.begin_row()
          .add(model)
          .add(alpha, 2)
          .add(ae_stretch.max(), 4)
          .add(alpha + 1.0, 2)
          .add(opt_stretch.max(), 4)
          .add(alpha / 2.0 + 1.0, 2)
          .add(ne_sigma.count() > 0 ? ne_sigma.max() : 0.0, 4)
          .add(paper::metric_poa(alpha), 2)
          .add(verdicts);
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: every measured stretch/sigma stays under its\n"
               "paper bound (Lemma 1, Lemma 2, Theorem 1 respectively).\n";
  return 0;
}
