// Experiment E12 -- Theorem 18 (Rd-GNCG PoA lower bound, any p-norm).
//
// Paper claim: the 4-point restriction of the Lemma 8 line construction
// realizes the exact ratio
//     (3a^3 + 24a^2 + 40a + 24) / (a^3 + 10a^2 + 32a + 24),
// which exceeds 1 for every alpha and tends to 3 as alpha -> infinity.
// Being a 1-D construction it holds under every p-norm simultaneously.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E12 | Theorem 18: 4-point p-norm PoA lower bound");
  ConsoleTable table({"alpha", "measured ratio", "paper formula",
                      "NE verified", "agreement"});
  for (double alpha :
       {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 4096.0}) {
    const auto c = theorem18_construction(alpha);
    const double measured =
        bench::measured_ratio(c.game, c.equilibrium, c.optimum);
    table.begin_row()
        .add(alpha, 2)
        .add(measured, 6)
        .add(paper::theorem18_lower(alpha), 6)
        .add(is_nash_equilibrium(c.game, c.equilibrium))
        .add(bench::verdict(measured, paper::theorem18_lower(alpha)));
  }
  table.print(std::cout);
  std::cout << "Shape check: measured == formula for every alpha; the ratio\n"
               "approaches 3 for large alpha, exactly as Theorem 18 states.\n";
  return 0;
}
