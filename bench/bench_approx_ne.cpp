// Experiment E16 -- Theorems 2 + 3 and Corollary 2 (approximate stability).
//
// Paper claims (all on metric hosts): any AE is an (alpha+1)-approximate
// GE (Thm 2); any GE is a 3-approximate NE via the UMFL locality gap
// (Thm 3); hence any AE is a 3(alpha+1)-approximate NE (Cor 2) -- which is
// how the paper proves approximately-stable states always exist.
//
// Reproduction: reach AE / GE by parallel restart dynamics (run_restarts:
// per-restart streams from stream_seed(label, i, seed), so the table is
// bit-identical at any thread count), measure the realized approximation
// factors beta over the converged profiles, and compare with the bounds.
// The measured betas are typically far below the worst case; the table
// reports the observed maxima.
#include <iostream>

#include "bench_util.hpp"
#include "core/equilibrium.hpp"
#include "core/restarts.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

using namespace gncg;

namespace {

/// Restart driver shared by the AE and GE rows: `restarts` runs under
/// `rule` from random spanning-tree-plus-chords starts (the profile_gen
/// stream family), folding `fold(final_profile)` over converged runs.
template <class Fold>
void fold_converged(const Game& game, MoveRule rule, std::uint64_t max_moves,
                    const char* label, std::uint64_t seed, Fold&& fold) {
  RestartOptions options;
  options.restarts = 5;
  options.seed = seed;
  options.label = label;
  options.start = StartProfileKind::kSpanningRandom;
  options.dynamics.rule = rule;
  options.dynamics.max_moves = max_moves;
  options.dynamics.record_steps = false;
  const RestartReport report = run_restarts(game, options);
  for (const RestartRun& run : report.runs) {
    if (run.skipped || !run.result.converged) continue;
    fold(run.result.final_profile);
  }
}

}  // namespace

int main() {
  print_banner(std::cout,
               "E16 | Theorems 2+3, Corollary 2: approximate equilibria");
  Rng rng(16);
  ConsoleTable table({"alpha", "AE: beta-GE (max)", "bound a+1",
                      "GE: beta-NE (max)", "bound 3", "AE: beta-NE (max)",
                      "bound 3(a+1)", "verdicts"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    RunningStats ae_ge, ge_ne, ae_ne;
    const Game game(random_metric_host(6, rng), alpha);
    fold_converged(game, MoveRule::kBestAddition, 5000, "e16_ae", rng(),
                   [&](const StrategyProfile& profile) {
                     ae_ge.add(greedy_approx_factor(game, profile));
                     ae_ne.add(nash_approx_factor(game, profile));
                   });
    fold_converged(game, MoveRule::kBestSingleMove, 8000, "e16_ge", rng(),
                   [&](const StrategyProfile& profile) {
                     ge_ne.add(nash_approx_factor(game, profile));
                   });
    const std::string verdicts =
        bench::bound_verdict(ae_ge.max(), alpha + 1.0) + "/" +
        bench::bound_verdict(ge_ne.max(), 3.0) + "/" +
        bench::bound_verdict(ae_ne.max(), 3.0 * (alpha + 1.0));
    table.begin_row()
        .add(alpha, 2)
        .add(ae_ge.max(), 4)
        .add(alpha + 1.0, 2)
        .add(ge_ne.max(), 4)
        .add(3.0, 1)
        .add(ae_ne.max(), 4)
        .add(3.0 * (alpha + 1.0), 2)
        .add(verdicts);
  }
  table.print(std::cout);
  std::cout
      << "Shape check: all realized approximation factors respect the paper\n"
         "bounds -- Thm 2 (alpha+1), Thm 3 (locality gap 3), Cor 2 "
         "(3(alpha+1)).\n";
  return 0;
}
