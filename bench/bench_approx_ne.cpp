// Experiment E16 -- Theorems 2 + 3 and Corollary 2 (approximate stability).
//
// Paper claims (all on metric hosts): any AE is an (alpha+1)-approximate
// GE (Thm 2); any GE is a 3-approximate NE via the UMFL locality gap
// (Thm 3); hence any AE is a 3(alpha+1)-approximate NE (Cor 2) -- which is
// how the paper proves approximately-stable states always exist.
//
// Reproduction: reach AE / GE by dynamics on random metric hosts, measure
// the realized approximation factors beta, and compare with the bounds.
// The measured betas are typically far below the worst case; the table
// reports the observed maxima.
#include <iostream>

#include "bench_util.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E16 | Theorems 2+3, Corollary 2: approximate equilibria");
  Rng rng(16);
  ConsoleTable table({"alpha", "AE: beta-GE (max)", "bound a+1",
                      "GE: beta-NE (max)", "bound 3", "AE: beta-NE (max)",
                      "bound 3(a+1)", "verdicts"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    RunningStats ae_ge, ge_ne, ae_ne;
    for (int trial = 0; trial < 5; ++trial) {
      const Game game(random_metric_host(6, rng), alpha);
      DynamicsOptions add_only;
      add_only.rule = MoveRule::kBestAddition;
      add_only.max_moves = 5000;
      add_only.seed = rng();
      const auto ae = run_dynamics(game, random_profile(game, rng), add_only);
      if (ae.converged) {
        ae_ge.add(greedy_approx_factor(game, ae.final_profile));
        ae_ne.add(nash_approx_factor(game, ae.final_profile));
      }
      DynamicsOptions greedy;
      greedy.rule = MoveRule::kBestSingleMove;
      greedy.max_moves = 8000;
      greedy.seed = rng();
      const auto ge = run_dynamics(game, random_profile(game, rng), greedy);
      if (ge.converged) ge_ne.add(nash_approx_factor(game, ge.final_profile));
    }
    const std::string verdicts =
        bench::bound_verdict(ae_ge.max(), alpha + 1.0) + "/" +
        bench::bound_verdict(ge_ne.max(), 3.0) + "/" +
        bench::bound_verdict(ae_ne.max(), 3.0 * (alpha + 1.0));
    table.begin_row()
        .add(alpha, 2)
        .add(ae_ge.max(), 4)
        .add(alpha + 1.0, 2)
        .add(ge_ne.max(), 4)
        .add(3.0, 1)
        .add(ae_ne.max(), 4)
        .add(3.0 * (alpha + 1.0), 2)
        .add(verdicts);
  }
  table.print(std::cout);
  std::cout
      << "Shape check: all realized approximation factors respect the paper\n"
         "bounds -- Thm 2 (alpha+1), Thm 3 (locality gap 3), Cor 2 "
         "(3(alpha+1)).\n";
  return 0;
}
