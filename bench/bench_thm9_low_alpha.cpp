// Experiment E3 -- Theorem 9 (PoA = 1 for the 1-2-GNCG with alpha < 1/2).
//
// Paper claim: for alpha < 1/2 every NE of the 1-2-GNCG equals the
// Algorithm 1 optimum (complete graph minus 1-1-2-triangle 2-edges), so
// selfishness costs nothing.
//
// Reproduction: (a) exhaustive NE enumeration on small random 1-2 hosts --
// every equilibrium must cost exactly the Algorithm 1 optimum; (b) sampled
// best-response dynamics on larger hosts -- every converged NE must match
// the optimum cost as well.
#include <iostream>

#include "bench_util.hpp"
#include "core/equilibrium_search.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout, "E3 | Theorem 9: PoA = 1 for alpha < 1/2 (1-2)");
  Rng rng(9);

  std::cout << "\n(a) Exhaustive enumeration (n = 4..5):\n";
  ConsoleTable exhaustive({"n", "alpha", "#NE", "OPT cost", "worst NE",
                           "exact PoA", "paper", "verdict"});
  for (int n : {4, 5}) {
    for (int trial = 0; trial < 3; ++trial) {
      const double alpha = rng.uniform_real(0.05, 0.49);
      const Game game(random_one_two_host(n, 0.5, rng), alpha);
      const auto equilibria = enumerate_nash_equilibria(game);
      const auto opt = algorithm1_one_two(game);
      const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
      exhaustive.begin_row()
          .add(n)
          .add(alpha, 3)
          .add(static_cast<long long>(equilibria.profiles.size()))
          .add(opt.cost.total(), 2)
          .add(equilibria.max_cost(), 2)
          .add(estimate.poa, 6)
          .add(1.0, 1)
          .add(bench::verdict(estimate.poa, 1.0));
    }
  }
  exhaustive.print(std::cout);

  std::cout << "\n(b) Sampled dynamics (n = 8..10):\n";
  ConsoleTable sampled({"n", "alpha", "#NE sampled", "all match OPT cost"});
  for (int n : {8, 10}) {
    const double alpha = rng.uniform_real(0.1, 0.45);
    const Game game(random_one_two_host(n, 0.5, rng), alpha);
    SamplingOptions options;
    options.attempts = 10;
    options.seed = rng();
    options.verify_exact_ne = n <= 8;
    const auto equilibria = sample_equilibria(game, options);
    const auto opt = algorithm1_one_two(game);
    bool all_match = true;
    for (double cost : equilibria.social_costs)
      all_match &= std::abs(cost - opt.cost.total()) < 1e-6;
    sampled.begin_row()
        .add(n)
        .add(alpha, 3)
        .add(static_cast<long long>(equilibria.profiles.size()))
        .add(all_match);
  }
  sampled.print(std::cout);
  std::cout << "Shape check: every equilibrium costs exactly the Algorithm 1\n"
               "optimum -- PoA = 1 below alpha = 1/2, as Theorem 9 proves.\n";
  return 0;
}
