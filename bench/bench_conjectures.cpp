// Experiment E21 (extension) -- probing the paper's open questions.
//
// The paper leaves three explicit openings:
//   Conjecture 1: the Rd-GNCG has no FIP under ANY p-norm (proved only for
//                 p = 1, Theorem 17).
//   Conjecture 2: the PoA of the general GNCG is exactly (alpha+2)/2 (only
//                 the ((alpha+2)/2)^2 upper bound is proved, Theorem 20).
//   Open:         do pure NE always exist in the M-GNCG?
//
// This bench gathers computational evidence for each:
//   (1) best-response-cycle search over integer-coordinate point sets under
//       p = 2 and p = inf (integer grids produce the distance ties cycles
//       need) -- a found, replay-verified cycle *witnesses* Conjecture 1
//       for that norm;
//   (2) exact PoA over many random general hosts, compared against both
//       bounds -- instances beyond (alpha+2)/2 would refute Conjecture 2;
//   (3) exhaustive NE enumeration over random metric hosts -- an instance
//       with zero equilibria would settle the existence question.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/cycle_instances.hpp"
#include "core/equilibrium_search.hpp"
#include "core/fip.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

using namespace gncg;

namespace {

/// Random points with small integer coordinates: the tie-rich geometry
/// where Euclidean best-response cycles appear.
PointSet integer_points(int n, int grid, Rng& rng) {
  PointSet points(n, 2);
  for (int i = 0; i < n; ++i) {
    points.set_coord(i, 0, static_cast<double>(rng.uniform_below(
                               static_cast<std::uint64_t>(grid))));
    points.set_coord(i, 1, static_cast<double>(rng.uniform_below(
                               static_cast<std::uint64_t>(grid))));
  }
  return points;
}

}  // namespace

int main() {
  print_banner(std::cout, "E21 (extension) | the paper's open questions");
  Rng rng(31337);

  std::cout << "\n(1) Conjecture 1: BR cycles beyond the 1-norm.\n"
               "    Pinned witness: 8 distinct integer points, p = 2, "
               "alpha = 1:\n";
  ConsoleTable witness({"instance", "cycle found", "cycle length",
                        "strict improvements", "exact best responses"});
  {
    const auto result = search_conjecture1_cycle(/*attempts=*/6);
    std::string strict = "-", exact = "-";
    if (result.found) {
      const Game game(
          HostGraph::from_points(conjecture1_euclidean_points(), 2.0),
          kConjecture1Alpha);
      strict = verify_improvement_cycle(game, result.analysis.cycle_start,
                                        result.analysis.cycle, false)
                   ? "all"
                   : "NO";
      exact = verify_improvement_cycle(game, result.analysis.cycle_start,
                                       result.analysis.cycle, true)
                  ? "all"
                  : "NO";
    }
    witness.begin_row()
        .add("conjecture1_euclidean_points")
        .add(result.found)
        .add(static_cast<long long>(result.analysis.cycle.size()))
        .add(strict)
        .add(exact);
  }
  witness.print(std::cout);

  std::cout << "    Randomized search over fresh integer point sets:\n";
  ConsoleTable cycles({"norm", "instances tried", "cycle found", "n", "alpha",
                       "cycle length", "replay verified"});
  for (double p : {2.0, kPNormInf}) {
    bool found = false;
    int tried = 0;
    for (int trial = 0; trial < 60 && !found; ++trial) {
      const int n = 8 + static_cast<int>(rng.uniform_below(3));
      const PointSet points = integer_points(n, 5, rng);
      for (double alpha : {1.0, 2.0}) {
        ++tried;
        const Game game(HostGraph::from_points(points, p), alpha);
        const auto analysis = search_best_response_cycle(game, 4, rng());
        if (!analysis.cycle_found) continue;
        const bool verified = verify_improvement_cycle(
            game, analysis.cycle_start, analysis.cycle, true);
        cycles.begin_row()
            .add(p == 2.0 ? "p=2 (Euclidean)" : "p=inf (Chebyshev)")
            .add(tried)
            .add(true)
            .add(n)
            .add(alpha, 1)
            .add(static_cast<long long>(analysis.cycle.size()))
            .add(verified);
        found = true;
        break;
      }
    }
    if (!found)
      cycles.begin_row()
          .add(p == 2.0 ? "p=2 (Euclidean)" : "p=inf (Chebyshev)")
          .add(tried)
          .add(false)
          .add("-")
          .add("-")
          .add("-")
          .add("-");
  }
  cycles.print(std::cout);

  std::cout << "\n(2) Conjecture 2: exact PoA of random general hosts vs "
               "both bounds (n=4):\n";
  ConsoleTable poa_table({"alpha", "instances", "max exact PoA",
                          "conj. (a+2)/2", "proved ((a+2)/2)^2",
                          "conjecture consistent"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    double worst = 0.0;
    int instances = 0;
    for (int trial = 0; trial < 12; ++trial) {
      const Game game(random_general_host(4, rng), alpha);
      const auto equilibria = enumerate_nash_equilibria(game);
      if (equilibria.empty()) continue;
      ++instances;
      const auto opt = exact_social_optimum(game);
      worst = std::max(
          worst, estimate_poa(equilibria, opt.cost.total(), true).poa);
    }
    poa_table.begin_row()
        .add(alpha, 1)
        .add(instances)
        .add(worst, 5)
        .add(paper::metric_poa(alpha), 4)
        .add(paper::general_poa_upper(alpha), 4)
        .add(bench::bound_verdict(worst, paper::metric_poa(alpha)));
  }
  poa_table.print(std::cout);

  std::cout << "\n(3) Open question: NE existence in the M-GNCG "
               "(exhaustive, n=4):\n";
  ConsoleTable existence({"alpha", "instances", "with NE", "without NE"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    int with_ne = 0, without_ne = 0;
    for (int trial = 0; trial < 15; ++trial) {
      const Game game(random_metric_host(4, rng), alpha);
      if (enumerate_nash_equilibria(game).empty()) ++without_ne;
      else ++with_ne;
    }
    existence.begin_row()
        .add(alpha, 1)
        .add(with_ne + without_ne)
        .add(with_ne)
        .add(without_ne);
  }
  existence.print(std::cout);

  std::cout
      << "Reading: (1) replay-verified best-response cycles exist under the\n"
         "Euclidean (and possibly Chebyshev) norm on tie-rich integer point\n"
         "sets -- computational support for Conjecture 1 beyond the paper's\n"
         "1-norm proof.  (2) no random general host exceeded (alpha+2)/2,\n"
         "consistent with Conjecture 2.  (3) every sampled metric instance\n"
         "admitted a pure NE, consistent with the existence conjecture.\n";
  return 0;
}
