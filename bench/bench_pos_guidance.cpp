// Experiment E19 (extension) -- Price of Stability and guided dynamics.
//
// The paper's conclusion names two follow-up questions: "analyze the Price
// of Stability" and "find a way to guide the agents to stable states with
// preferably low social cost".  This bench runs both on top of the
// reproduction machinery:
//   (a) exact PoS on small instances per model class (for the T-GNCG,
//       Corollary 3 already implies PoS = 1);
//   (b) guided dynamics: seed best-response dynamics from a low-cost
//       network with a stability-searched ownership and compare the
//       equilibrium cost reached against random-start dynamics.
#include <iostream>

#include "bench_util.hpp"
#include "core/equilibrium_search.hpp"
#include "core/guidance.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E19 (extension) | Price of Stability and guided dynamics");
  Rng rng(19);

  std::cout << "\n(a) Exact PoS per model class (n = 4, NE enumeration):\n";
  ConsoleTable pos_table({"model", "alpha", "#NE", "PoS", "PoA",
                          "paper note"});
  const struct {
    const char* name;
    int flavor;
    const char* note;
  } models[] = {{"T-GNCG", 0, "PoS = 1 (Cor 3)"},
                {"1-2-GNCG", 1, "PoS = 1 for a < 1/2 (Thm 9)"},
                {"M-GNCG", 2, "open question"},
                {"GNCG", 3, "open question"}};
  for (const auto& model : models) {
    for (double alpha : {0.4, 1.0, 2.0}) {
      RunningStats pos_stats, poa_stats;
      long long ne_total = 0;
      for (int trial = 0; trial < 3; ++trial) {
        const Game game = [&] {
          switch (model.flavor) {
            case 0:
              return Game(HostGraph::from_tree(random_tree(4, rng, 1.0, 6.0)),
                          alpha);
            case 1: return Game(random_one_two_host(4, 0.5, rng), alpha);
            case 2: return Game(random_metric_host(4, rng), alpha);
            default: return Game(random_general_host(4, rng), alpha);
          }
        }();
        const auto equilibria = enumerate_nash_equilibria(game);
        if (equilibria.empty()) continue;
        ne_total += static_cast<long long>(equilibria.profiles.size());
        const auto opt = exact_social_optimum(game);
        const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
        pos_stats.add(estimate.pos);
        poa_stats.add(estimate.poa);
      }
      pos_table.begin_row()
          .add(model.name)
          .add(alpha, 1)
          .add(ne_total)
          .add(pos_stats.count() ? pos_stats.max() : 0.0, 5)
          .add(poa_stats.count() ? poa_stats.max() : 0.0, 5)
          .add(model.note);
    }
  }
  pos_table.print(std::cout);

  std::cout << "\n(b) Guided vs random dynamics (M-GNCG, n = 8):\n";
  ConsoleTable guide_table({"alpha", "target cost", "guided NE cost",
                            "random mean", "random best", "guided wins"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    RunningStats guided_costs, random_means;
    int wins = 0, comparisons = 0;
    for (int trial = 0; trial < 3; ++trial) {
      const Game game(random_metric_host(8, rng), alpha);
      GuidanceOptions options;
      options.random_runs = 4;
      options.seed = rng();
      options.verify_nash = false;  // n = 8: BR-converged is the evidence
      const auto comparison =
          compare_guided_vs_random(game, local_search_optimum(game), options);
      if (!comparison.guided.converged) continue;
      ++comparisons;
      guided_costs.add(comparison.guided.social_cost);
      random_means.add(comparison.random_mean_cost());
      if (comparison.guided.social_cost <=
          comparison.random_mean_cost() + 1e-9)
        ++wins;
      if (trial == 0) {
        guide_table.begin_row()
            .add(alpha, 2)
            .add(comparison.target_cost, 2)
            .add(comparison.guided.social_cost, 2)
            .add(comparison.random_mean_cost(), 2)
            .add(comparison.random_best_cost(), 2)
            .add(std::to_string(wins) + "/" + std::to_string(comparisons));
      }
    }
  }
  guide_table.print(std::cout);
  std::cout
      << "Reading: the T-GNCG shows PoS = 1 exactly (Cor 3); low-alpha 1-2\n"
         "games have PoS = PoA = 1 (Thm 9); and seeding dynamics from a\n"
         "low-cost network steers agents to equilibria no worse -- usually\n"
         "strictly better -- than random-start outcomes, answering the\n"
         "conclusion's guidance question in the affirmative on small hosts.\n";
  return 0;
}
