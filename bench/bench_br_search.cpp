// Best-response search bench: incremental br_search engine vs the naive
// per-subset-Dijkstra baseline.
//
// For each backend (dense 1-2, euclidean, tree) and each n in {64,128,256}
// this driver settles a recursive-tree start profile with best-single-move
// dynamics (bounded move budget, so certification runs against a
// near-equilibrium profile, the paper's workload shape; alpha is scaled
// with n per backend to keep the NP-hard search in its tractable regime,
// see make_game), then measures:
//   * NE certification: per-agent first-improvement exact BR with the
//     current cost as incumbent -- old (naive_exact_best_response over a
//     fresh environment per agent) vs new (engine-borrowing incremental
//     search with parallel first-level fan-out);
//   * full BR: incumbent-bounded full-argmin searches for a sample of
//     agents, old vs new, with evaluation counts for both.
// The improving-agent count and the full-BR strategies must agree between
// the paths (differential check; MISMATCH fails the bench).
//
// Output is one JSON document on stdout (recorded as BENCH_br.json).  The
// process refuses to run from a non-optimized build (see --allow-debug).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/profile_gen.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/arena.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace gncg {
namespace {

/// Per-backend game in the tractable certification regime.  Exact best
/// response is NP-hard: at fixed alpha the admissible edge budget
/// (incumbent - host floor) / alpha grows with n and the subset tree
/// explodes for *both* searches, so alpha is scaled with n (dense: alpha=n
/// over 1-2 weights; euclidean: alpha=n/4 over ~1e3-scale distances) to
/// keep the per-agent search depth bounded across sizes.  Tree hosts
/// certify in near-constant work at any alpha (the host floor is exact).
Game make_game(const std::string& backend, int n, Rng& rng) {
  if (backend == "euclidean")
    return Game(HostGraph::from_points(uniform_points(n, 2, 1000.0, rng), 2.0),
                static_cast<double>(n) / 4.0);
  if (backend == "tree")
    return Game(HostGraph::from_tree(random_tree(n, rng, 1.0, 10.0)), 2.0);
  return Game(random_one_two_host(n, 0.5, rng), static_cast<double>(n));
}

struct RunResult {
  std::string backend;
  int n = 0;
  int settle_moves = 0;
  int certify_agents = 0;
  int improving_agents = 0;
  double old_certify_ms = 0.0;
  double new_certify_ms = 0.0;
  double new_certify_all_ms = 0.0;  ///< new engine over ALL n agents
  int full_agents = 0;
  double old_full_ms = 0.0;
  double new_full_ms = 0.0;
  double old_full_evals = 0.0;
  double new_full_evals = 0.0;
  bool mismatch = false;
};

RunResult run_backend(const std::string& backend, int n, std::uint64_t stream,
                      int certify_agents, int full_agents) {
  RunResult result;
  result.backend = backend;
  result.n = n;
  Rng rng(stream);

  const Game game = make_game(backend, n, rng);
  // Settle towards a greedy equilibrium (bounded move budget: euclidean
  // hosts have a long tail of tiny real-valued improvements).
  DynamicsOptions settle;
  settle.rule = MoveRule::kBestSingleMove;
  settle.scheduler = SchedulerKind::kRoundRobin;
  settle.max_moves = static_cast<std::uint64_t>(8) * n;
  settle.detect_cycles = false;
  const auto settled =
      run_dynamics(game, recursive_tree_profile(game, rng), settle);
  result.settle_moves = static_cast<int>(settled.moves);
  DeviationEngine engine(game, settled.final_profile);
  const StrategyProfile& profile = engine.profile();

  // Exactly certify_agents distinct agents, evenly spaced over the id range.
  std::vector<int> agents;
  const int per = std::min(certify_agents, n);
  for (int i = 0; i < per; ++i)
    agents.push_back(static_cast<int>((static_cast<long long>(i) * n) / per));
  result.certify_agents = per;

  std::vector<double> incumbents;
  for (int u : agents) incumbents.push_back(engine.agent_cost(u));

  // --- NE certification: first-improvement searches ---
  int old_improving = 0;
  {
    const Stopwatch timer;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      BestResponseOptions options;
      options.incumbent = incumbents[i];
      options.first_improvement = true;
      if (naive_exact_best_response(game, profile, agents[i], options)
              .improved)
        ++old_improving;
    }
    result.old_certify_ms = timer.millis();
  }
  int new_improving = 0;
  {
    const Stopwatch timer;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      BestResponseOptions options;
      options.incumbent = incumbents[i];
      options.first_improvement = true;
      if (exact_best_response(engine, agents[i], options).improved)
        ++new_improving;
    }
    result.new_certify_ms = timer.millis();
  }
  result.improving_agents = new_improving;
  if (old_improving != new_improving) result.mismatch = true;

  // New-engine-only absolute throughput: certify every agent (the naive
  // baseline is sampled above because its weak global floor makes full
  // certification infeasible at the larger sizes).
  {
    const Stopwatch timer;
    for (int u = 0; u < n; ++u) {
      BestResponseOptions options;
      options.incumbent = engine.agent_cost(u);
      options.first_improvement = true;
      volatile bool sink = exact_best_response(engine, u, options).improved;
      (void)sink;
    }
    result.new_certify_all_ms = timer.millis();
  }

  // --- full BR: incumbent-bounded argmin for a sample of agents ---
  std::vector<int> full;
  const int per_full = std::min(full_agents, n);
  for (int i = 0; i < per_full; ++i)
    full.push_back(static_cast<int>((static_cast<long long>(i) * n) / per_full));
  result.full_agents = per_full;

  std::vector<BestResponseResult> old_results;
  {
    const Stopwatch timer;
    for (int u : full) {
      BestResponseOptions options;
      options.incumbent = engine.agent_cost(u);
      old_results.push_back(
          naive_exact_best_response(game, profile, u, options));
      result.old_full_evals +=
          static_cast<double>(old_results.back().evaluations);
    }
    result.old_full_ms = timer.millis();
  }
  {
    const Stopwatch timer;
    for (std::size_t i = 0; i < full.size(); ++i) {
      BestResponseOptions options;
      options.incumbent = engine.agent_cost(full[i]);
      const auto br = exact_best_response(engine, full[i], options);
      result.new_full_evals += static_cast<double>(br.evaluations);
      if (br.improved != old_results[i].improved ||
          (br.improved && !(br.strategy == old_results[i].strategy)))
        result.mismatch = true;
    }
    result.new_full_ms = timer.millis();
  }
  return result;
}

}  // namespace
}  // namespace gncg

int main(int argc, char** argv) {
  bool smoke = false;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--allow-debug") == 0) allow_debug = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_br_search [--smoke] [--allow-debug]\n");
      return 1;
    }
  }

  if (!gncg::bench::require_release(allow_debug, "bench_br_search")) return 2;

  using gncg::RunResult;
  const std::vector<int> sizes =
      smoke ? std::vector<int>{24} : std::vector<int>{64, 128, 256};
  std::vector<RunResult> results;
  bool failed = false;
  std::uint64_t point = 0;
  for (const char* backend : {"dense", "euclidean", "tree"}) {
    for (int n : sizes) {
      // The old-vs-new comparison certifies every agent at n=64 and a
      // sampled set beyond (the naive baseline's weak global floor makes
      // its full certification sweep infeasible at the larger sizes; the
      // new engine always certifies all n agents, see new_certify_all_ms).
      // The full-argmin sample stays small for the same reason.
      int certify_agents = n;
      if (!smoke && n >= 128) certify_agents = n >= 256 ? 8 : 16;
      const int full_agents = smoke ? 4 : 8;
      const RunResult r = gncg::run_backend(
          backend, n, gncg::stream_seed("bench_br", point++, 20190416u),
          certify_agents, full_agents);
      results.push_back(r);
      if (r.mismatch) {
        std::fprintf(stderr, "FAIL: %s n=%d old/new disagreement\n", backend,
                     n);
        failed = true;
      }
      std::fprintf(stderr,
                   "done %-9s n=%-4d certify %.1f -> %.1f ms (%.1fx), "
                   "full %.1f -> %.1f ms (%.1fx)\n",
                   backend, n, r.old_certify_ms, r.new_certify_ms,
                   r.new_certify_ms > 0 ? r.old_certify_ms / r.new_certify_ms
                                        : 0.0,
                   r.old_full_ms, r.new_full_ms,
                   r.new_full_ms > 0 ? r.old_full_ms / r.new_full_ms : 0.0);
    }
  }

  std::printf("{\n");
  std::printf(
      "  \"description\": \"Best-response search: incremental br_search "
      "engine (one Dijkstra per search + in-DFS distance maintenance + "
      "parallel first-level fan-out) vs the naive per-subset-Dijkstra "
      "baseline.  Per backend/n: a recursive-tree profile settled by "
      "best-single-move dynamics (move budget 8n; alpha scaled with n per "
      "backend -- dense alpha=n, euclidean alpha=n/4, tree alpha=2 -- to "
      "keep the NP-hard search tractable), then (a) NE certification -- "
      "per-agent "
      "first-improvement exact BR over certify_agents evenly spaced agents "
      "(all agents at n=64; sampled beyond, where the naive baseline's "
      "weak global floor is infeasible -- new_certify_all_ms is the new "
      "engine certifying all n agents) -- and (b) incumbent-bounded full "
      "BR for full_agents sampled agents.  improving_agents and full-BR "
      "strategies are differentially checked between the paths.\",\n");
  gncg::bench::print_context(
      std::string("./build/bench_br_search") + (smoke ? " --smoke" : ""),
      gncg::default_thread_count());
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf(
        "    {\"backend\": \"%s\", \"n\": %d, \"settle_moves\": %d, "
        "\"certify_agents\": %d, \"improving_agents\": %d, "
        "\"old_certify_ms\": %.2f, \"new_certify_ms\": %.2f, "
        "\"certify_speedup\": %.2f, \"new_certify_all_ms\": %.2f, "
        "\"full_agents\": %d, "
        "\"old_full_ms\": %.2f, \"new_full_ms\": %.2f, "
        "\"full_speedup\": %.2f, \"old_full_evals\": %.0f, "
        "\"new_full_evals\": %.0f}%s\n",
        r.backend.c_str(), r.n, r.settle_moves, r.certify_agents,
        r.improving_agents, r.old_certify_ms, r.new_certify_ms,
        r.new_certify_ms > 0.0 ? r.old_certify_ms / r.new_certify_ms : 0.0,
        r.new_certify_all_ms, r.full_agents, r.old_full_ms, r.new_full_ms,
        r.new_full_ms > 0.0 ? r.old_full_ms / r.new_full_ms : 0.0,
        r.old_full_evals, r.new_full_evals,
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return failed ? 3 : 0;
}
