// Experiment E13 -- Figure 10 / Theorem 19 (1-norm, dimension sweep).
//
// Paper claim: the 2d+1 cross-polytope-style points under the 1-norm give
//     PoA >= 1 + alpha / (2 + alpha/(2d-1)),
// which approaches the metric upper bound (alpha+2)/2 as d grows -- so in
// high-dimensional 1-norm spaces the geometric PoA is essentially tight.
//
// The workload itself lives in the sweep subsystem as the registered
// scenario `fig10_dimension` (src/sweep/scenarios_builtin.cpp); this driver
// only declares the grid, runs it through the SweepRunner and prints the
// table rows the BENCH workflow has always recorded.
#include <iostream>

#include "bench_util.hpp"
#include "sweep/runner.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E13 | Figure 10 / Theorem 19: dimension sweep, 1-norm");

  SweepPlan plan;
  plan.scenarios = {"fig10_dimension"};
  plan.hosts = {"euclidean"};
  plan.ns = {1, 2, 3, 4, 6, 8, 12};  // the dimension d
  plan.alphas = {0.5, 1.0, 2.0, 4.0};
  plan.norm_ps = {1.0};  // Theorem 19 is a 1-norm construction
  const SweepReport report = run_sweep(plan);

  // Legacy row order: alpha outer, d inner (the plan expands d-major).
  ConsoleTable table({"d", "n=2d+1", "alpha", "measured ratio",
                      "paper formula", "limit (a+2)/2", "NE check",
                      "agreement"});
  for (const double alpha : plan.alphas)
    for (const int d : plan.ns)
      for (const SweepOutcome& outcome : report.outcomes) {
        if (outcome.point.n != d || outcome.point.alpha != alpha) continue;
        const ScenarioRow& row = outcome.result.rows.front();
        table.begin_row()
            .add(d)
            .add(static_cast<int>(row.metric_or_nan("n_nodes")))
            .add(alpha, 2)
            .add(row.metric_or_nan("measured_ratio"), 6)
            .add(row.metric_or_nan("paper_formula"), 6)
            .add(row.metric_or_nan("metric_limit"), 4)
            .add(row.tag_or_empty("ne_check"))
            .add(row.tag_or_empty("agreement"));
      }
  table.print(std::cout);
  std::cout << "Shape check: measured == formula for every (d, alpha) and\n"
               "the ratio climbs towards (alpha+2)/2 with the dimension.\n";
  return 0;
}
