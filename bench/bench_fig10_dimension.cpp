// Experiment E13 -- Figure 10 / Theorem 19 (1-norm, dimension sweep).
//
// Paper claim: the 2d+1 cross-polytope-style points under the 1-norm give
//     PoA >= 1 + alpha / (2 + alpha/(2d-1)),
// which approaches the metric upper bound (alpha+2)/2 as d grows -- so in
// high-dimensional 1-norm spaces the geometric PoA is essentially tight.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E13 | Figure 10 / Theorem 19: dimension sweep, 1-norm");
  ConsoleTable table({"d", "n=2d+1", "alpha", "measured ratio",
                      "paper formula", "limit (a+2)/2", "NE check",
                      "agreement"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    for (int d : {1, 2, 3, 4, 6, 8, 12}) {
      const auto c = theorem19_construction(d, alpha);
      const double measured =
          bench::measured_ratio(c.game, c.equilibrium, c.optimum);
      std::string check = "-";
      if (d <= 4)
        check = is_nash_equilibrium(c.game, c.equilibrium) ? "exact NE"
                                                           : "NOT NE";
      table.begin_row()
          .add(d)
          .add(2 * d + 1)
          .add(alpha, 2)
          .add(measured, 6)
          .add(paper::theorem19_lower(alpha, d), 6)
          .add(paper::metric_poa(alpha), 4)
          .add(check)
          .add(bench::verdict(measured, paper::theorem19_lower(alpha, d)));
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: measured == formula for every (d, alpha) and\n"
               "the ratio climbs towards (alpha+2)/2 with the dimension.\n";
  return 0;
}
