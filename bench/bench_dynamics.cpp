// Dynamics-kernel scaling bench: restart throughput and cycle detection.
//
// Two workload families, at n in {64, 128, 256} on random 1-2 hosts:
//
//  * restart throughput: run_restarts with the best-single-move rule,
//    serial (1 thread) vs the full worker pool.  Restart streams are
//    derived per restart (PR 3 contract), so both configurations compute
//    the identical result set -- the ratio is pure orchestration speedup
//    (per-worker engine reuse + pool fan-out).
//  * cycle detection: on a recorded cycle-hunting trajectory (many bounded
//    round-robin runs concatenated into a mostly-distinct history, plus
//    revisit laps at the end), time three revisit detectors doing
//    identical work per step:
//      - full_compare: exact comparison against every stored profile,
//      - rehash: recompute the profile hash from scratch each step, map
//        lookup, exact confirmation (the pre-kernel ProfileHistory),
//      - zobrist: incrementally maintained hash + transposition table,
//        exact confirmation (the kernel's detector).
//
// Output is one JSON document on stdout (recorded as BENCH_dynamics.json).
// The process refuses to run from a non-optimized build (--allow-debug
// overrides, never for recorded numbers).
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/dynamics.hpp"
#include "core/restarts.hpp"
#include "core/transposition.hpp"
#include "metric/host_graph.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace gncg {
namespace {

struct ThroughputResult {
  int n = 0;
  int restarts = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  std::size_t converged = 0;
  std::uint64_t total_moves = 0;
};

ThroughputResult bench_throughput(int n, int restarts) {
  Rng rng(20260730u + static_cast<std::uint64_t>(n));
  const Game game(random_one_two_host(n, 0.5, rng), 1.5);

  RestartOptions options;
  options.restarts = restarts;
  options.seed = 7;
  options.label = "bench_dynamics";
  options.start = StartProfileKind::kRecursiveTree;
  options.dynamics.rule = MoveRule::kBestSingleMove;
  options.dynamics.scheduler = SchedulerKind::kRoundRobin;
  // Bounded runs: every applied move invalidates the caches, so a move
  // costs ~n SSSP; a fixed slice keeps the large-n points affordable while
  // still measuring pure orchestration overhead per restart.
  options.dynamics.max_moves = 64;
  options.dynamics.record_steps = false;

  ThroughputResult result;
  result.n = n;
  result.restarts = restarts;

  set_default_thread_count(1);
  {
    const Stopwatch timer;
    const RestartReport report = run_restarts(game, options);
    result.serial_ms = timer.millis();
    result.converged = report.converged;
    for (const auto& run : report.runs) result.total_moves += run.result.moves;
  }
  set_default_thread_count(0);  // restore the pool
  {
    const Stopwatch timer;
    const RestartReport report = run_restarts(game, options);
    result.parallel_ms = timer.millis();
    // Identical results regardless of thread count (the determinism
    // contract); a mismatch is a bench failure.
    std::uint64_t moves = 0;
    for (const auto& run : report.runs) moves += run.result.moves;
    if (report.converged != result.converged || moves != result.total_moves) {
      std::fprintf(stderr,
                   "FAIL: serial/parallel restart results diverge at n=%d\n",
                   n);
      std::exit(3);
    }
  }
  return result;
}

struct DetectionResult {
  int n = 0;
  std::size_t trajectory = 0;  ///< profiles walked (revisit-heavy)
  double full_compare_ms = 0.0;
  double rehash_ms = 0.0;
  double zobrist_ms = 0.0;
  std::size_t revisits = 0;
};

/// Records a cycle-hunting profile sequence: `runs` bounded dynamics runs
/// from distinct random starts concatenated (a mostly-distinct history --
/// the regime where every new state must be checked against thousands of
/// stored ones), with the first run's trajectory re-walked twice more at
/// the end (guaranteed revisits, so detector agreement is exercised on
/// hits too).  Consecutive profiles differ in one agent except at run
/// boundaries, matching what kernel steps look like.
std::vector<StrategyProfile> hunt_trajectory(const Game& game, int runs) {
  Rng rng(99);
  std::vector<StrategyProfile> trajectory;
  std::size_t first_run_end = 0;
  for (int r = 0; r < runs; ++r) {
    DynamicsOptions options;
    options.rule = MoveRule::kBestSingleMove;
    options.scheduler = SchedulerKind::kRoundRobin;
    options.max_moves = 256;
    options.detect_cycles = false;
    options.record_steps = true;
    options.seed = rng();
    const StrategyProfile start = random_profile(game, rng);
    const auto run = run_dynamics(game, start, options);
    trajectory.push_back(start);
    for (const auto& step : run.steps) {
      StrategyProfile next = trajectory.back();
      next.set_strategy(step.agent, step.new_strategy);
      trajectory.push_back(std::move(next));
    }
    if (r == 0) first_run_end = trajectory.size();
  }
  for (int lap = 0; lap < 2; ++lap)
    for (std::size_t i = 0; i < first_run_end; ++i)
      trajectory.push_back(trajectory[i]);
  return trajectory;
}

DetectionResult bench_detection(int n, int runs) {
  Rng rng(31u + static_cast<std::uint64_t>(n));
  const Game game(random_one_two_host(n, 0.5, rng), 1.5);
  const auto trajectory = hunt_trajectory(game, runs);

  DetectionResult result;
  result.n = n;
  result.trajectory = trajectory.size();

  // (a) full comparison against every stored profile.
  std::size_t full_hits = 0;
  {
    const Stopwatch timer;
    std::vector<StrategyProfile> seen;
    for (const auto& profile : trajectory) {
      bool revisit = false;
      for (const auto& other : seen)
        if (other == profile) {
          revisit = true;
          break;
        }
      if (revisit) ++full_hits;
      else seen.push_back(profile);
    }
    result.full_compare_ms = timer.millis();
  }

  // (b) per-step from-scratch rehash + confirmed lookup (the old
  // ProfileHistory): the hash costs O(n^2/64) words every step.
  std::size_t rehash_hits = 0;
  {
    const Stopwatch timer;
    TranspositionTable table;
    for (const auto& profile : trajectory) {
      const std::uint64_t hash = zobrist_profile_hash(profile);
      if (table.find(hash, profile) != TranspositionTable::npos) ++rehash_hits;
      else table.insert(hash, profile, 0);
    }
    result.rehash_ms = timer.millis();
  }

  // (c) incrementally maintained hash + confirmed lookup (the kernel's
  // detector): the per-step hash is one XOR delta.
  std::size_t zobrist_hits = 0;
  {
    const Stopwatch timer;
    TranspositionTable table;
    std::uint64_t hash = zobrist_profile_hash(trajectory.front());
    for (std::size_t i = 0; i < trajectory.size(); ++i) {
      if (i > 0) {
        // Incremental delta over the one agent whose strategy changed
        // (what DeviationEngine::profile_hash maintains under mutations).
        const StrategyProfile& prev = trajectory[i - 1];
        const StrategyProfile& cur = trajectory[i];
        for (int u = 0; u < cur.node_count(); ++u)
          if (!(prev.strategy(u) == cur.strategy(u)))
            hash ^= zobrist_strategy_hash(u, prev.strategy(u)) ^
                    zobrist_strategy_hash(u, cur.strategy(u));
      }
      if (table.find(hash, trajectory[i]) != TranspositionTable::npos)
        ++zobrist_hits;
      else table.insert(hash, trajectory[i], 0);
    }
    result.zobrist_ms = timer.millis();
  }

  if (full_hits != rehash_hits || full_hits != zobrist_hits) {
    std::fprintf(stderr,
                 "FAIL: detectors disagree at n=%d (full=%zu rehash=%zu "
                 "zobrist=%zu)\n",
                 n, full_hits, rehash_hits, zobrist_hits);
    std::exit(3);
  }
  result.revisits = full_hits;
  return result;
}

}  // namespace
}  // namespace gncg

int main(int argc, char** argv) {
  bool smoke = false;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--allow-debug") == 0) allow_debug = true;
    else {
      std::fprintf(stderr, "usage: bench_dynamics [--smoke] [--allow-debug]\n");
      return 1;
    }
  }

  if (!gncg::bench::require_release(allow_debug, "bench_dynamics")) return 2;

  const unsigned num_cpus = std::thread::hardware_concurrency();
  const bool parallelism_limited = num_cpus <= 1;
  if (parallelism_limited)
    std::fprintf(stderr,
                 "bench_dynamics: only %u CPU(s) visible; the serial-vs-pool "
                 "ratio measures orchestration overhead, not parallel "
                 "speedup (parallelism_limited).\n",
                 num_cpus);

  const std::vector<int> sizes =
      smoke ? std::vector<int>{64} : std::vector<int>{64, 128, 256};
  const int restarts = smoke ? 8 : 16;
  const int hunt_runs = smoke ? 4 : 20;

  std::vector<gncg::ThroughputResult> throughput;
  std::vector<gncg::DetectionResult> detection;
  for (int n : sizes) {
    throughput.push_back(gncg::bench_throughput(n, restarts));
    std::fprintf(stderr, "throughput n=%-4d serial %.1f ms, pool %.1f ms\n", n,
                 throughput.back().serial_ms, throughput.back().parallel_ms);
    detection.push_back(gncg::bench_detection(n, hunt_runs));
    std::fprintf(stderr,
                 "detection  n=%-4d full %.1f ms, rehash %.2f ms, zobrist "
                 "%.2f ms (%zu revisits)\n",
                 n, detection.back().full_compare_ms,
                 detection.back().rehash_ms, detection.back().zobrist_ms,
                 detection.back().revisits);
  }

  std::printf("{\n");
  std::printf(
      "  \"description\": \"Dynamics kernel: run_restarts throughput (serial "
      "1-thread vs worker pool; identical results by the determinism "
      "contract, so the ratio is pure orchestration speedup) and revisit "
      "detection on a revisit-heavy trajectory (full_compare = exact scan "
      "over all stored profiles, rehash = from-scratch profile hash per "
      "step + confirmed lookup (the pre-kernel ProfileHistory), zobrist = "
      "incrementally maintained hash + confirmed lookup (the kernel's "
      "transposition detector)). All three detectors confirm hits by exact "
      "comparison, so none can report a false cycle.\",\n");
  gncg::bench::print_context(
      std::string("./build/bench_dynamics") + (smoke ? " --smoke" : ""),
      gncg::default_thread_count());
  std::printf("  \"restart_throughput\": [\n");
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    const auto& r = throughput[i];
    std::printf(
        "    {\"n\": %d, \"restarts\": %d, \"serial_ms\": %.1f, "
        "\"parallel_ms\": %.1f, \"speedup\": %.2f, \"converged\": %zu, "
        "\"total_moves\": %llu}%s\n",
        r.n, r.restarts, r.serial_ms, r.parallel_ms,
        r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0, r.converged,
        static_cast<unsigned long long>(r.total_moves),
        i + 1 < throughput.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"cycle_detection\": [\n");
  for (std::size_t i = 0; i < detection.size(); ++i) {
    const auto& r = detection[i];
    std::printf(
        "    {\"n\": %d, \"trajectory\": %zu, \"revisits\": %zu, "
        "\"full_compare_ms\": %.2f, \"rehash_ms\": %.3f, \"zobrist_ms\": "
        "%.3f, \"speedup_vs_full\": %.1f, \"speedup_vs_rehash\": %.2f}%s\n",
        r.n, r.trajectory, r.revisits, r.full_compare_ms, r.rehash_ms,
        r.zobrist_ms,
        r.zobrist_ms > 0.0 ? r.full_compare_ms / r.zobrist_ms : 0.0,
        r.zobrist_ms > 0.0 ? r.rehash_ms / r.zobrist_ms : 0.0,
        i + 1 < detection.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
