// Experiment E6 -- Theorem 12 / Corollary 3 (structure of T-GNCG equilibria).
//
// Paper claims: every NE of the T-GNCG is a tree (Thm 12), and the
// metric-defining tree T itself is simultaneously the social optimum and a
// NE (Cor 3) -- so the Price of Stability is 1.
//
// Reproduction: random tree metrics; equilibria sampled via best-response
// dynamics must all be trees; the defining tree must admit a NE ownership
// and match the exact optimum cost.
#include <iostream>

#include "bench_util.hpp"
#include "core/equilibrium.hpp"
#include "core/equilibrium_search.hpp"
#include "core/ownership.hpp"
#include "core/social_optimum.hpp"
#include "graph/graph_algos.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E6 | Theorem 12 + Corollary 3: T-GNCG equilibria are trees");
  Rng rng(12);

  ConsoleTable table({"n", "alpha", "#NE sampled", "all trees",
                      "tree T is NE (ownership)", "PoS (best NE / OPT)"});
  for (int n : {5, 6, 8, 10}) {
    for (int trial = 0; trial < 2; ++trial) {
      const double alpha = rng.uniform_real(0.4, 3.0);
      const auto tree = random_tree(n, rng, 1.0, 8.0);
      const Game game(HostGraph::from_tree(tree), alpha);

      SamplingOptions options;
      options.attempts = 8;
      options.seed = rng();
      options.verify_exact_ne = n <= 8;
      const auto equilibria = sample_equilibria(game, options);
      bool all_trees = true;
      for (const auto& profile : equilibria.profiles)
        all_trees &= is_tree(built_graph(game, profile));

      std::string tree_ne = "-";
      if (n <= 6) {
        const auto owned = find_nash_ownership(game, tree.edges());
        tree_ne = owned.has_value() ? "yes" : "NO";
      }
      const double opt_cost = tree_optimum(game).cost.total();
      const double pos = equilibria.empty()
                             ? std::numeric_limits<double>::quiet_NaN()
                             : equilibria.min_cost() / opt_cost;
      table.begin_row()
          .add(n)
          .add(alpha, 2)
          .add(static_cast<long long>(equilibria.profiles.size()))
          .add(all_trees)
          .add(tree_ne)
          .add(pos, 5);
    }
  }
  table.print(std::cout);
  std::cout
      << "Shape check: every sampled equilibrium is a tree (Thm 12); the\n"
         "defining tree admits NE ownership and PoS = 1 rows confirm Cor 3\n"
         "(cheapest equilibrium = optimum).\n";
  return 0;
}
