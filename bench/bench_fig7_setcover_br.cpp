// Experiment E9 -- Figure 4 / Theorem 13 and Figure 7 / Theorem 16
// (best-response computation is NP-hard: the reduction from Set Cover).
//
// Paper claim: in both gadget geometries (tree metric and R^2 under any
// p-norm) agent u's best response buys exactly the set nodes of a minimum
// set cover.
//
// Reproduction: build the gadgets from random set systems, solve the
// best-response problem with the exact search, decode the bought set nodes
// and compare against an exact branch-and-bound Set Cover solver.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/hardness_gadgets.hpp"
#include "core/best_response.hpp"
#include "npc/set_cover.hpp"
#include "support/rng.hpp"

using namespace gncg;

namespace {

struct GadgetRow {
  std::string geometry;
  int universe;
  int sets;
  int min_cover;
  int br_cover;
  bool is_cover;
  double br_millis;
};

GadgetRow run_gadget(const SetCoverGadget& gadget, const std::string& name) {
  Stopwatch timer;
  const auto br =
      exact_best_response(gadget.game, gadget.profile, gadget.agent);
  const double millis = timer.millis();
  const auto cover = gadget_strategy_to_cover(gadget, br.strategy);
  const auto exact = exact_min_set_cover(gadget.instance);
  return {name,
          gadget.instance.universe_size,
          static_cast<int>(gadget.instance.set_count()),
          static_cast<int>(exact.chosen.size()),
          static_cast<int>(cover.size()),
          is_cover(gadget.instance, cover),
          millis};
}

}  // namespace

int main() {
  print_banner(std::cout,
               "E9 | Theorems 13+16: best response == minimum set cover");
  ConsoleTable table({"gadget", "k (elements)", "m (sets)", "min cover",
                      "BR cover", "covers U", "BR time ms", "agreement"});
  Rng rng(20190416);
  for (int trial = 0; trial < 6; ++trial) {
    const int k = 3 + trial % 3;            // 3..5 elements
    const int m = 3 + (trial / 2) % 2;      // 3..4 sets
    const auto instance = random_set_cover(k, m, 0.45, rng);
    const std::vector<GadgetRow> rows = {
        run_gadget(theorem13_gadget(instance), "tree (Thm 13)"),
        run_gadget(theorem16_gadget(instance, 2.0), "plane p=2 (Thm 16)"),
        run_gadget(theorem16_gadget(instance, 1.0), "plane p=1 (Thm 16)"),
    };
    for (const auto& row : rows) {
      table.begin_row()
          .add(row.geometry)
          .add(row.universe)
          .add(row.sets)
          .add(row.min_cover)
          .add(row.br_cover)
          .add(row.is_cover)
          .add(row.br_millis, 2)
          .add(row.min_cover == row.br_cover && row.is_cover ? "ok"
                                                             : "MISMATCH");
    }
  }
  table.print(std::cout);
  std::cout
      << "Shape check: in every gadget the agent's exact best response buys\n"
         "exactly a minimum set cover, confirming both NP-hardness "
         "reductions\nrun forwards.\n";
  return 0;
}
