// Experiment E7 -- Figure 5 / Theorem 14 (the T-GNCG has no FIP).
//
// Paper claim: tree metrics admit best-response cycles, so the T-GNCG (and
// hence the M-GNCG) is not a potential game.
//
// Reproduction: the paper's Figure 5 drawing does not pin down its tree's
// edge set in the text, so we reproduce the *statement* two ways:
//  (a) rigorously -- exhaustive improvement-graph analysis over random
//      4-node tree metrics finds and replay-verifies improving-move cycles
//      (the exact witness that no ordinal potential exists);
//  (b) heuristically -- best-response dynamics with profile-revisit
//      detection over 10-node trees carrying the paper's exact weight
//      multiset {3,7,2,5,12,9,11,2,10}; the search budget and outcome are
//      reported either way.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/cycle_instances.hpp"
#include "core/fip.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout, "E7 | Figure 5 / Theorem 14: T-GNCG has no FIP");

  ConsoleTable exhaustive({"alpha", "trees tried", "improving cycle",
                           "cycle length", "replay verified",
                           "tree edges (u,v,w)"});
  for (double alpha : {0.5, 1.0, 2.0, 3.0}) {
    const auto result = find_tree_fip_violation(4, 100, 12345, alpha);
    std::string edges = "-";
    std::string verified = "-";
    if (result.found) {
      edges.clear();
      for (const auto& e : result.tree->edges())
        edges += "(" + std::to_string(e.u) + "," + std::to_string(e.v) + "," +
                 format_double(e.weight, 2) + ")";
      const Game game(HostGraph::from_tree(*result.tree), alpha);
      verified = verify_improvement_cycle(game, result.analysis.cycle_start,
                                          result.analysis.cycle, false)
                     ? "yes"
                     : "NO";
    }
    exhaustive.begin_row()
        .add(alpha, 2)
        .add(static_cast<long long>(result.attempts))
        .add(result.found)
        .add(static_cast<long long>(result.analysis.cycle.size()))
        .add(verified)
        .add(edges);
  }
  std::cout << "\n(a) Exhaustive improvement-graph analysis, 4-node trees:\n";
  exhaustive.print(std::cout);

  std::cout << "\n(b) Heuristic BR-cycle search, 10-node trees with the "
               "paper's weight multiset:\n";
  ConsoleTable heuristic({"alpha", "dynamics runs", "BR cycle found",
                          "cycle length"});
  for (double alpha : {0.5, 1.0, 2.0}) {
    const auto result = search_theorem14_cycle(30, 9, 2024, alpha);
    heuristic.begin_row()
        .add(alpha, 2)
        .add(static_cast<long long>(result.attempts))
        .add(result.found)
        .add(static_cast<long long>(result.analysis.cycle.size()));
  }
  heuristic.print(std::cout);
  std::cout
      << "Shape check: (a) certifies Theorem 14's statement -- tree metrics\n"
         "admit improving-move cycles, hence no potential function exists.\n"
         "(b) documents that random-start best-response dynamics converge on\n"
         "10-node trees within this budget: reaching the paper's hand-crafted\n"
         "BR cycle needs its exact (unpublished) starting profile.  A genuine\n"
         "BR cycle is exhibited on the Figure 8 instance in E8 instead.\n";
  return 0;
}
