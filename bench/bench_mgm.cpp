// Parallel-MGM round kernel bench: rounds-to-convergence and move
// throughput of the sharded round scheduler vs the sequential schedulers.
//
// For each host family (dense 1-2, euclidean) and size the bench runs the
// same start profile under three schedulers:
//
//  * round_robin  -- the sequential activation-order baseline,
//  * max_gain     -- the sequential gain scheduler (one warm + full
//                    proposal pass per single committed move),
//  * parallel_mgm -- the round-based sharded kernel (one warm + full
//                    proposal pass per *batch* of non-conflicting moves).
//
// parallel_mgm pays the same per-round proposal cost as max_gain but
// commits up to one move per shard, so moves/sec is the headline number;
// rounds-to-convergence (reported whenever the run converged within
// budget) is the experimental axis the paper's sequential dynamics never
// had.  The small tier runs best_single_move to convergence; the large
// tier (n = 4096) runs the approx-ladder rule with a bounded repair cap
// under a fixed move budget -- sequential budgets are smaller there (a
// sequential move costs a full proposal round) and throughput is the
// comparison, not totals.
//
// The serialized-result determinism contract (1 vs N threads) is probed
// inline on the smallest size per host: serial and pool runs must agree
// on moves, rounds and the final profile, else the bench exits 3.
//
// Output is one JSON document on stdout (recorded as BENCH_mgm.json).
// The process refuses to run from a non-optimized build (--allow-debug
// overrides, never for recorded numbers).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/dynamics.hpp"
#include "core/profile_gen.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace gncg {
namespace {

struct MgmRow {
  std::string host;
  int n = 0;
  std::string scheduler;
  std::string rule;
  std::uint64_t max_moves = 0;
  std::uint64_t moves = 0;
  std::uint64_t rounds = 0;
  bool converged = false;
  std::size_t max_round_commits = 0;
  double commits_per_round = 0.0;
  double elapsed_ms = 0.0;
  double moves_per_sec = 0.0;
};

// Alphas are chosen on the tree-stable side (sparse equilibria) so the
// small tier actually converges within budget; starts are sparse random
// recursive trees for the same reason (a dense random start at n = 256
// costs minutes of proposal passes per run on a 1-CPU box).
Game make_bench_game(const std::string& host, int n, Rng& rng) {
  if (host == "euclidean")
    return Game(HostGraph::from_points(uniform_points(n, 2, 1000.0, rng), 2.0),
                400.0);
  return Game(random_one_two_host(n, 0.5, rng), 6.0);
}

DynamicsOptions make_options(SchedulerKind scheduler, MoveRule rule,
                             std::uint64_t max_moves) {
  DynamicsOptions options;
  options.scheduler = scheduler;
  options.rule = rule;
  options.max_moves = max_moves;
  options.seed = 17;
  options.detect_cycles = true;
  options.record_steps = false;
  if (rule == MoveRule::kApproxLadder) {
    options.approx_budget = 8;
    options.approx_repair_cap = 256;  // adaptive-radius bounded probes
  }
  return options;
}

MgmRow bench_one(const Game& game, const std::string& host, int n,
                 SchedulerKind scheduler, MoveRule rule,
                 std::uint64_t max_moves, const StrategyProfile& start) {
  const DynamicsOptions options = make_options(scheduler, rule, max_moves);
  const Stopwatch timer;
  const DynamicsResult result = run_dynamics(game, start, options);
  MgmRow row;
  row.host = host;
  row.n = n;
  row.scheduler = std::string(scheduler_name(scheduler));
  row.rule = std::string(move_rule_name(rule));
  row.max_moves = max_moves;
  row.moves = result.moves;
  row.rounds = result.rounds;
  row.converged = result.converged;
  row.max_round_commits = result.max_round_commits;
  row.commits_per_round =
      result.rounds > 0
          ? static_cast<double>(result.moves) /
                static_cast<double>(result.rounds)
          : 0.0;
  row.elapsed_ms = timer.millis();
  row.moves_per_sec = row.elapsed_ms > 0.0
                          ? 1000.0 * static_cast<double>(result.moves) /
                                row.elapsed_ms
                          : 0.0;
  return row;
}

/// Serial-vs-pool determinism probe for the MGM kernel: identical moves,
/// rounds and final profile at 1 thread and at the full pool, else exit 3.
void probe_determinism(const Game& game, const std::string& host, int n,
                       MoveRule rule, std::uint64_t max_moves,
                       const StrategyProfile& start) {
  const DynamicsOptions options =
      make_options(SchedulerKind::kParallelMgm, rule, max_moves);
  set_default_thread_count(1);
  const DynamicsResult serial = run_dynamics(game, start, options);
  set_default_thread_count(0);  // restore the pool
  const DynamicsResult pool = run_dynamics(game, start, options);
  if (serial.moves != pool.moves || serial.rounds != pool.rounds ||
      !(serial.final_profile == pool.final_profile)) {
    std::fprintf(stderr,
                 "FAIL: parallel_mgm serial/pool results diverge on %s n=%d\n",
                 host.c_str(), n);
    std::exit(3);
  }
}

}  // namespace
}  // namespace gncg

int main(int argc, char** argv) {
  bool smoke = false;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--allow-debug") == 0) allow_debug = true;
    else {
      std::fprintf(stderr, "usage: bench_mgm [--smoke] [--allow-debug]\n");
      return 1;
    }
  }

  if (!gncg::bench::require_release(allow_debug, "bench_mgm")) return 2;

  const unsigned num_cpus = std::thread::hardware_concurrency();
  if (num_cpus <= 1)
    std::fprintf(stderr,
                 "bench_mgm: only %u CPU(s) visible; parallel_mgm round "
                 "throughput measures batching, not parallel speedup.\n",
                 num_cpus);

  constexpr gncg::SchedulerKind kSchedulers[] = {
      gncg::SchedulerKind::kRoundRobin, gncg::SchedulerKind::kMaxGain,
      gncg::SchedulerKind::kParallelMgm};

  const std::vector<int> sizes =
      smoke ? std::vector<int>{64} : std::vector<int>{256, 4096};
  std::vector<gncg::MgmRow> rows;
  for (const std::string host : {"dense", "euclidean"}) {
    bool probed = false;
    for (int n : sizes) {
      gncg::Rng rng(20260808u + static_cast<std::uint64_t>(n) +
                    (host == "euclidean" ? 1u : 0u));
      const gncg::Game game = gncg::make_bench_game(host, n, rng);
      // Small tier: best_single_move to convergence.  Large tier:
      // approx-ladder under bounded budgets (a sequential move costs a
      // full proposal round, so sequential budgets are smaller).
      const bool large = n >= 1024;
      const gncg::StrategyProfile start =
          gncg::recursive_tree_profile(game, rng);
      const gncg::MoveRule rule = large ? gncg::MoveRule::kApproxLadder
                                        : gncg::MoveRule::kBestSingleMove;
      const std::uint64_t mgm_budget = smoke ? 150 : (large ? 64 : 800);
      const std::uint64_t seq_budget = smoke ? 150 : (large ? 8 : 800);
      if (!probed) {
        gncg::probe_determinism(game, host, n, rule, smoke ? 40 : 60, start);
        probed = true;
      }
      for (const gncg::SchedulerKind scheduler : kSchedulers) {
        const std::uint64_t budget =
            scheduler == gncg::SchedulerKind::kParallelMgm ? mgm_budget
                                                           : seq_budget;
        rows.push_back(gncg::bench_one(game, host, n, scheduler, rule,
                                       budget, start));
        const gncg::MgmRow& row = rows.back();
        std::fprintf(stderr,
                     "%s n=%-5d %-12s %-16s moves=%-5llu rounds=%-5llu "
                     "batch<=%-3zu %7.1f ms  %8.1f moves/s%s\n",
                     row.host.c_str(), row.n, row.scheduler.c_str(),
                     row.rule.c_str(),
                     static_cast<unsigned long long>(row.moves),
                     static_cast<unsigned long long>(row.rounds),
                     row.max_round_commits, row.elapsed_ms,
                     row.moves_per_sec, row.converged ? "  (converged)" : "");
      }
    }
  }

  std::printf("{\n");
  std::printf(
      "  \"description\": \"Parallel-MGM round kernel vs sequential "
      "schedulers: identical start profiles per (host, n); parallel_mgm "
      "pays one warm + full proposal pass per committed *batch* where "
      "max_gain pays it per single move, so moves/sec is the headline and "
      "rounds is rounds-to-convergence whenever converged is true.  Small "
      "tier runs best_single_move to convergence; the n=4096 tier runs the "
      "approx-ladder rule (budget 8, repair_cap 256, adaptive radius) "
      "under bounded move budgets (sequential budgets smaller by design: "
      "a sequential move costs a full proposal round).\",\n");
  gncg::bench::print_context(
      std::string("./build/bench_mgm") + (smoke ? " --smoke" : ""),
      gncg::default_thread_count());
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf(
        "    {\"host\": \"%s\", \"n\": %d, \"scheduler\": \"%s\", "
        "\"rule\": \"%s\", \"max_moves\": %llu, \"moves\": %llu, "
        "\"rounds\": %llu, \"converged\": %s, \"max_round_commits\": %zu, "
        "\"commits_per_round\": %.2f, \"elapsed_ms\": %.1f, "
        "\"moves_per_sec\": %.1f}%s\n",
        r.host.c_str(), r.n, r.scheduler.c_str(), r.rule.c_str(),
        static_cast<unsigned long long>(r.max_moves),
        static_cast<unsigned long long>(r.moves),
        static_cast<unsigned long long>(r.rounds),
        r.converged ? "true" : "false", r.max_round_commits,
        r.commits_per_round, r.elapsed_ms, r.moves_per_sec,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
