// Experiment E5 -- Figure 6 / Theorem 15 (tight PoA lower bound, T-GNCG).
//
// Paper claim: on the star tree metric (one weight-1 edge, n-2 edges of
// weight 2/alpha) the spanning star centered at the special leaf v is a NE
// whose cost exceeds the optimum tree by
//     ratio(n, alpha) = ((n-2)(1+2/a)+1) / ((n-2)(2/a)+1)  ->  (alpha+2)/2,
// matching the Theorem 1 upper bound, i.e. PoA(T-GNCG) = (alpha+2)/2.
//
// This bench sweeps n and alpha, measures the realized cost ratio, checks
// it against the closed form and the limit, and re-verifies the equilibrium
// claim (exactly for small n, greedy-stability for larger n).
#include <iostream>

#include "bench_util.hpp"
#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E5 | Figure 6 / Theorem 15: T-GNCG PoA -> (alpha+2)/2");
  ConsoleTable table({"n", "alpha", "measured ratio", "paper formula",
                      "limit (a+2)/2", "equilibrium check", "agreement"});
  for (double alpha : {0.5, 1.0, 2.0, 8.0, 32.0}) {
    for (int n : {4, 8, 16, 32, 64, 128, 256}) {
      const auto c = theorem15_construction(n, alpha);
      const double measured = bench::measured_ratio(c.game, c.equilibrium,
                                                    c.optimum);
      std::string check = "-";
      if (n <= 8)
        check = is_nash_equilibrium(c.game, c.equilibrium) ? "exact NE"
                                                           : "NOT NE";
      else if (n <= 64)
        check = is_greedy_equilibrium(c.game, c.equilibrium) ? "greedy eq"
                                                             : "NOT GE";
      table.begin_row()
          .add(n)
          .add(alpha, 2)
          .add(measured, 5)
          .add(c.expected_ratio, 5)
          .add(paper::metric_poa(alpha), 5)
          .add(check)
          .add(bench::verdict(measured, c.expected_ratio));
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: ratio grows with n towards (alpha+2)/2 and the\n"
               "equilibrium claim verifies, reproducing the tight T-GNCG/"
               "M-GNCG PoA.\n";
  return 0;
}
