// Host-backend scaling bench: dense vs implicit host metrics at large n.
//
// For each backend (dense, lazy closure, euclidean, tree) and each n in
// {128, 1024, 4096} this driver measures, on a path-profile start:
//   * host + game construction time,
//   * DeviationEngine construction + full distance-cache warm-up,
//   * an all-agents best-single-move sweep (sampled at the largest sizes
//     where a full sweep would dominate the runtime; the euclidean 4096
//     sweep is always full -- it is the acceptance workload),
//   * the first host_distance_sum query (eager Floyd-Warshall vs lazy
//     closure row vs O(1) geometric sums),
//   * DistanceMatrix cells allocated during the run (must be 0 for the
//     geometric backends: they never materialize an O(n^2) matrix), and
//   * peak RSS after the run (rusage, monotone across runs -- implicit
//     backends run first so their peaks are attributable).
//
// Output is one JSON document on stdout (recorded as BENCH_host.json).
// The process refuses to run from a non-optimized build (see --allow-debug):
// recorded numbers from debug builds are how BENCH_engine.json originally
// went wrong.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/deviation_engine.hpp"
#include "core/game.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace gncg {
namespace {

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

Game make_game(const std::string& backend, int n, Rng& rng) {
  if (backend == "euclidean")
    return Game(HostGraph::from_points(uniform_points(n, 2, 1000.0, rng), 2.0),
                2.0);
  if (backend == "tree")
    return Game(HostGraph::from_tree(random_tree(n, rng, 1.0, 10.0)), 2.0);
  // dense / lazy: the canonical random 1-2 host (metric by construction, so
  // building it costs O(n^2), not an O(n^3) repair pass).
  auto host = random_one_two_host(n, 0.5, rng);
  if (backend == "lazy")
    host = HostGraph::from_weights_lazy(host.weights(), ModelClass::kOneTwo);
  return Game(std::move(host), 2.0);
}

struct RunResult {
  std::string backend;
  int n = 0;
  double construct_ms = 0.0;
  double warm_ms = 0.0;
  double sweep_ms = 0.0;
  int sweep_agents = 0;
  int improving_agents = 0;
  double closure_probe_ms = -1.0;  ///< -1: skipped (dense 4096 would be O(n^3))
  std::uint64_t matrix_cells = 0;
  double rss_mb = 0.0;
};

RunResult run_backend(const std::string& backend, int n, int sweep_agents,
                      bool probe_closure) {
  RunResult result;
  result.backend = backend;
  result.n = n;
  const std::uint64_t cells_before = DistanceMatrix::allocated_cells_total();
  Rng rng(20190416u + static_cast<std::uint64_t>(n));

  Stopwatch construct;
  const Game game = make_game(backend, n, rng);
  result.construct_ms = construct.millis();

  StrategyProfile profile(n);
  for (int i = 0; i + 1 < n; ++i) profile.add_buy(i, i + 1);

  Stopwatch warm;
  DeviationEngine engine(game, std::move(profile));
  engine.warm_distances();
  result.warm_ms = warm.millis();

  // Exactly sweep_agents distinct agents, evenly spaced over the id range
  // (identical to a fixed stride for the power-of-two sizes used here).
  const int per_sweep = std::min(sweep_agents, n);
  Stopwatch sweep;
  for (int i = 0; i < per_sweep; ++i) {
    const int u =
        static_cast<int>((static_cast<long long>(i) * n) / per_sweep);
    ++result.sweep_agents;
    if (engine.best_single_move_warm(u).improved) ++result.improving_agents;
  }
  result.sweep_ms = sweep.millis();

  if (probe_closure) {
    Stopwatch probe;
    volatile double sink = game.host_distance_sum(0);
    (void)sink;
    result.closure_probe_ms = probe.millis();
  }

  result.matrix_cells =
      DistanceMatrix::allocated_cells_total() - cells_before;
  result.rss_mb = peak_rss_mb();
  return result;
}

}  // namespace
}  // namespace gncg

int main(int argc, char** argv) {
  bool smoke = false;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--allow-debug") == 0) allow_debug = true;
    else {
      std::fprintf(stderr, "usage: bench_host_backends [--smoke] [--allow-debug]\n");
      return 1;
    }
  }

  if (!gncg::bench::require_release(allow_debug, "bench_host_backends"))
    return 2;

  using gncg::RunResult;
  const std::vector<int> sizes = smoke ? std::vector<int>{64, 128}
                                       : std::vector<int>{128, 1024, 4096};
  std::vector<RunResult> results;
  bool failed = false;

  // Implicit backends first so their peak-RSS numbers are not polluted by
  // the dense matrices allocated later in the same process.
  for (const char* backend : {"euclidean", "tree", "lazy", "dense"}) {
    for (int n : sizes) {
      // Full sweep everywhere it is affordable; at n = 4096 the euclidean
      // sweep stays full (the acceptance workload) and the others sample.
      int sweep_agents = n;
      if (!smoke && n > 1024 && std::string(backend) != "euclidean")
        sweep_agents = 512;
      if (smoke) sweep_agents = std::min(n, 32);
      // Probing host_distance_sum on an un-closured dense host runs the full
      // O(n^3) Floyd-Warshall; skip it where that dwarfs the bench itself.
      const bool probe_closure =
          std::string(backend) != "dense" || n <= (smoke ? 128 : 1024);
      const RunResult r =
          gncg::run_backend(backend, n, sweep_agents, probe_closure);
      results.push_back(r);
      const bool implicit_backend =
          std::string(backend) == "euclidean" || std::string(backend) == "tree";
      if (implicit_backend && r.matrix_cells != 0) {
        std::fprintf(stderr,
                     "FAIL: %s backend at n=%d allocated %llu DistanceMatrix "
                     "cells (expected 0)\n",
                     backend, n,
                     static_cast<unsigned long long>(r.matrix_cells));
        failed = true;
      }
      std::fprintf(stderr, "done %-9s n=%-5d sweep=%d agents in %.1f ms\n",
                   backend, n, r.sweep_agents, r.sweep_ms);
    }
  }

  std::printf("{\n");
  std::printf(
      "  \"description\": \"Host-backend scaling: dense vs implicit host "
      "metrics. Workload per run: host+game construction, engine warm-up "
      "(n SSSP), best-single-move sweep over sweep_agents agents on a path "
      "profile, and a first host_distance_sum probe. matrix_cells counts "
      "DistanceMatrix cells allocated during the run (0 proves no O(n^2) "
      "host matrix was materialized); rss_mb is the process peak RSS after "
      "the run (implicit backends run first). closure_probe_ms -1 means "
      "skipped (eager O(n^3) closure at n=4096).\",\n");
  gncg::bench::print_context(
      std::string("./build/bench_host_backends") + (smoke ? " --smoke" : ""),
      gncg::default_thread_count());
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf(
        "    {\"backend\": \"%s\", \"n\": %d, \"construct_ms\": %.3f, "
        "\"warm_ms\": %.1f, \"sweep_ms\": %.1f, \"sweep_agents\": %d, "
        "\"improving_agents\": %d, \"closure_probe_ms\": %.3f, "
        "\"matrix_cells\": %llu, \"rss_mb\": %.1f}%s\n",
        r.backend.c_str(), r.n, r.construct_ms, r.warm_ms, r.sweep_ms,
        r.sweep_agents, r.improving_agents, r.closure_probe_ms,
        static_cast<unsigned long long>(r.matrix_cells), r.rss_mb,
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return failed ? 3 : 0;
}
