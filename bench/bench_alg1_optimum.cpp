// Experiment E17 -- Theorems 5 + 6 (tractable islands of the 1-2-GNCG).
//
// Paper claims: Algorithm 1 (complete graph minus 1-1-2-triangle 2-edges)
// computes the social optimum in polynomial time for alpha <= 1 (Thm 6);
// for 1/2 <= alpha <= 1 the minimum-weight 3/2-spanner admits an edge
// ownership that is a Nash equilibrium, proving NE existence (Thm 5).
//
// Reproduction: (a) Algorithm 1 vs exact enumeration on random hosts plus
// scaling timings; (b) exact minimum-weight 3/2-spanners with NE-ownership
// search.
#include <iostream>

#include "bench_util.hpp"
#include "core/equilibrium.hpp"
#include "core/ownership.hpp"
#include "core/social_optimum.hpp"
#include "graph/mst.hpp"
#include "graph/spanner.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout, "E17 | Theorems 5+6: Algorithm 1 and spanner NE");
  Rng rng(17);

  std::cout << "\n(a) Theorem 6: Algorithm 1 vs exact optimum (alpha <= 1):\n";
  ConsoleTable alg1({"n", "alpha", "Alg1 cost", "exact OPT", "agreement",
                     "Alg1 time ms"});
  for (int n : {5, 6}) {
    for (int trial = 0; trial < 3; ++trial) {
      const double alpha = rng.uniform_real(0.1, 1.0);
      const Game game(random_one_two_host(n, rng.uniform01(), rng), alpha);
      Stopwatch timer;
      const auto fast = algorithm1_one_two(game);
      const double millis = timer.millis();
      const auto exact = exact_social_optimum(game);
      alg1.begin_row()
          .add(n)
          .add(alpha, 3)
          .add(fast.cost.total(), 3)
          .add(exact.cost.total(), 3)
          .add(bench::verdict(fast.cost.total(), exact.cost.total()))
          .add(millis, 3);
    }
  }
  alg1.print(std::cout);

  std::cout << "\n    Algorithm 1 scaling (polynomial time claim):\n";
  ConsoleTable scaling({"n", "time ms"});
  for (int n : {50, 100, 200}) {
    const Game game(random_one_two_host(n, 0.5, rng), 0.8);
    Stopwatch timer;
    const auto design = algorithm1_one_two(game);
    scaling.begin_row().add(n).add(timer.millis(), 2);
    (void)design;
  }
  scaling.print(std::cout);

  std::cout << "\n(b) Theorem 5: minimum-weight 3/2-spanner admits NE "
               "ownership (1/2 <= alpha <= 1):\n";
  ConsoleTable spanner({"n", "alpha", "spanner edges", "spanner weight",
                        "NE ownership found"});
  for (double alpha : {0.5, 0.75, 1.0}) {
    for (int trial = 0; trial < 2; ++trial) {
      const auto host = random_one_two_host(5, 0.45, rng);
      const Game game(HostGraph(host), alpha);
      const auto edges =
          min_weight_three_halves_spanner_onetwo(host.weights());
      const auto owned = find_nash_ownership(game, edges);
      spanner.begin_row()
          .add(5)
          .add(alpha, 2)
          .add(static_cast<long long>(edges.size()))
          .add(edge_list_weight(edges), 1)
          .add(owned.has_value());
    }
  }
  spanner.print(std::cout);
  std::cout << "Shape check: Algorithm 1 equals the exact optimum on every\n"
               "row and runs in polynomial time; every minimum 3/2-spanner\n"
               "admitted NE ownership, reproducing the Thm 5 existence "
               "proof.\n";
  return 0;
}
