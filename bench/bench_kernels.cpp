// Experiment E18 -- substrate kernel throughput (google-benchmark).
//
// Microbenchmarks for the primitives everything else is built on: Dijkstra
// and APSP, cost evaluation, exact and approximate best responses,
// single-move scans, Algorithm 1, spanner construction and NE enumeration.
// These are the knobs that determine how far the laptop-scale experiments
// reach (repro band: pure graph algorithms, fast equilibrium search).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium_search.hpp"
#include "core/facility_location.hpp"
#include "core/social_optimum.hpp"
#include "graph/apsp.hpp"
#include "graph/dijkstra.hpp"
#include "graph/spanner.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

WeightedGraph random_connected_graph(int n, double p, Rng& rng) {
  WeightedGraph g(n);
  for (int v = 1; v < n; ++v)
    g.add_edge(static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(v))), v,
               rng.uniform_real(1.0, 10.0));
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (!g.has_edge(u, v) && rng.bernoulli(p))
        g.add_edge(u, v, rng.uniform_real(1.0, 10.0));
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  Rng rng(1);
  const auto g = random_connected_graph(static_cast<int>(state.range(0)), 0.1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(distance_sum(g, 0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_Apsp(benchmark::State& state) {
  Rng rng(2);
  const auto g = random_connected_graph(static_cast<int>(state.range(0)), 0.1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(apsp(g));
}
BENCHMARK(BM_Apsp)->Arg(64)->Arg(256);

void BM_FloydWarshall(benchmark::State& state) {
  Rng rng(3);
  const auto host = random_metric_host(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    DistanceMatrix m = host.weights();
    floyd_warshall(m);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_FloydWarshall)->Arg(64)->Arg(128);

void BM_SocialCost(benchmark::State& state) {
  Rng rng(4);
  const Game game(random_metric_host(static_cast<int>(state.range(0)), rng), 1.0);
  const auto profile = random_profile(game, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(social_cost(game, profile));
}
BENCHMARK(BM_SocialCost)->Arg(16)->Arg(64);

void BM_ExactBestResponse(benchmark::State& state) {
  Rng rng(5);
  const Game game(random_metric_host(static_cast<int>(state.range(0)), rng), 2.0);
  const auto profile = random_profile(game, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(exact_best_response(game, profile, 0));
}
BENCHMARK(BM_ExactBestResponse)->Arg(10)->Arg(14)->Arg(18);

void BM_BestSingleMove(benchmark::State& state) {
  Rng rng(6);
  const Game game(random_metric_host(static_cast<int>(state.range(0)), rng), 1.0);
  const auto profile = random_profile(game, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(best_single_move(game, profile, 0));
}
BENCHMARK(BM_BestSingleMove)->Arg(16)->Arg(64);

void BM_UmflBestResponse(benchmark::State& state) {
  Rng rng(7);
  const Game game(random_metric_host(static_cast<int>(state.range(0)), rng), 1.0);
  const auto profile = random_profile(game, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(approx_best_response_umfl(game, profile, 0));
}
BENCHMARK(BM_UmflBestResponse)->Arg(16)->Arg(32);

void BM_Algorithm1(benchmark::State& state) {
  Rng rng(8);
  const Game game(
      random_one_two_host(static_cast<int>(state.range(0)), 0.5, rng), 0.8);
  for (auto _ : state)
    benchmark::DoNotOptimize(algorithm1_one_two(game));
}
BENCHMARK(BM_Algorithm1)->Arg(32)->Arg(128);

void BM_GreedySpanner(benchmark::State& state) {
  Rng rng(9);
  const auto host = random_metric_host(static_cast<int>(state.range(0)), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(greedy_spanner(host.weights(), 2.0));
}
BENCHMARK(BM_GreedySpanner)->Arg(32)->Arg(64);

void BM_EnumerateEquilibria(benchmark::State& state) {
  Rng rng(10);
  const Game game(random_one_two_host(4, 0.5, rng), 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(enumerate_nash_equilibria(game));
}
BENCHMARK(BM_EnumerateEquilibria);

void BM_ExactOptimum(benchmark::State& state) {
  Rng rng(11);
  const Game game(random_metric_host(static_cast<int>(state.range(0)), rng), 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(exact_social_optimum(game));
}
BENCHMARK(BM_ExactOptimum)->Arg(5)->Arg(6);

// --- deviation engine vs naive single-move evaluation -------------------
//
// The core workload of equilibrium checks and greedy dynamics: the best
// single move of EVERY agent at one profile (a random spanning tree of a
// random metric host).  The naive path rebuilds the agent environment and
// runs one Dijkstra per candidate move; the engine shares one adjacency and
// n cached SSSP vectors across all scans and evaluates moves by delta.
// The ratio of these two benchmarks is the headline number in
// BENCH_engine.json.

Game tree_start_game(int n, Rng& rng) {
  return Game(random_metric_host(n, rng), 1.0);
}

void BM_SingleMoveSweepNaive(benchmark::State& state) {
  Rng rng(20);
  const Game game = tree_start_game(static_cast<int>(state.range(0)), rng);
  Rng profile_rng(21);
  const auto profile = random_profile(game, profile_rng, 0.0);
  for (auto _ : state) {
    double total = 0.0;
    for (int u = 0; u < game.node_count(); ++u)
      total += naive_best_single_move(game, profile, u).cost;
    benchmark::DoNotOptimize(total);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleMoveSweepNaive)->Arg(64)->Arg(128);

void BM_SingleMoveSweepEngine(benchmark::State& state) {
  Rng rng(20);
  const Game game = tree_start_game(static_cast<int>(state.range(0)), rng);
  Rng profile_rng(21);
  const auto profile = random_profile(game, profile_rng, 0.0);
  for (auto _ : state) {
    // From-scratch per iteration: engine construction, the n-SSSP warm-up
    // and all scans are inside the timed region.
    DeviationEngine engine(game, profile);
    engine.warm_distances();
    double total = 0.0;
    for (int u = 0; u < game.node_count(); ++u)
      total += engine.best_single_move_warm(u).cost;
    benchmark::DoNotOptimize(total);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleMoveSweepEngine)->Arg(64)->Arg(128);

void BM_GreedyDynamicsEngine(benchmark::State& state) {
  Rng rng(22);
  const Game game = tree_start_game(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    DynamicsOptions options;
    options.rule = MoveRule::kBestSingleMove;
    options.max_moves = 200;
    options.seed = 42;
    Rng start_rng(7);
    benchmark::DoNotOptimize(
        run_dynamics(game, random_profile(game, start_rng, 0.0), options));
  }
}
BENCHMARK(BM_GreedyDynamicsEngine)->Arg(64)->Arg(128);

void BM_BestResponseDynamics(benchmark::State& state) {
  Rng rng(12);
  const Game game(random_metric_host(static_cast<int>(state.range(0)), rng), 1.0);
  for (auto _ : state) {
    DynamicsOptions options;
    options.max_moves = 1000;
    options.seed = 42;
    Rng start_rng(7);
    benchmark::DoNotOptimize(
        run_dynamics(game, random_profile(game, start_rng), options));
  }
}
BENCHMARK(BM_BestResponseDynamics)->Arg(8)->Arg(12);

}  // namespace
}  // namespace gncg

// Custom main: `--smoke` runs every benchmark with minimal timing so CI can
// exercise the whole suite (and surface perf regressions in its logs) in a
// few seconds; all other flags pass through to google-benchmark.
//
// Non-optimized builds refuse to run unless --allow-debug is passed:
// BENCH_engine.json was once recorded from a debug build, and numbers from
// unoptimized binaries must never look recordable again.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  bool allow_debug = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--allow-debug") {
      allow_debug = true;
      continue;
    }
    args.push_back(argv[i]);
  }
#ifndef NDEBUG
  if (!allow_debug) {
    std::fprintf(stderr,
                 "bench_kernels: refusing to benchmark a non-optimized build "
                 "(NDEBUG is not set).\n"
                 "Configure with -DCMAKE_BUILD_TYPE=Release, or pass "
                 "--allow-debug for a non-recorded run.\n");
    return 2;
  }
#else
  (void)allow_debug;
#endif
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
