// Experiment E2 -- Figure 3 / Theorem 8 (tight PoA lower bound, 1-2-GNCG).
//
// Paper claim: on the clique-of-stars 1-2 host the all-1-edges equilibrium
// (without u-to-leaf edges) costs 3N^4 - Theta(N^3) while the optimum costs
// (alpha+2)N^4 + Theta(N^2); the PoA therefore tends to 3/2 for alpha = 1
// and to 3/(alpha+2) for 1/2 <= alpha < 1 as N grows.
//
// The optimum reference here is Algorithm 1, which Theorem 6 proves exact
// for alpha <= 1.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E2 | Figure 3 / Theorem 8: 1-2-GNCG PoA -> 3/(alpha+2)");
  ConsoleTable table({"N", "n", "alpha", "measured ratio", "paper limit",
                      "gap to limit", "equilibrium check"});
  for (double alpha : {0.5, 0.75, 1.0}) {
    const double limit = alpha == 1.0 ? 1.5 : 3.0 / (alpha + 2.0);
    for (int N : {2, 3, 4, 6, 8, 10, 12}) {
      const auto c = theorem8_construction(N, alpha);
      const double measured =
          bench::measured_ratio(c.game, c.equilibrium, c.optimum);
      std::string check = "-";
      if (N <= 2)
        check = is_nash_equilibrium(c.game, c.equilibrium) ? "exact NE"
                                                           : "NOT NE";
      else if (N <= 4)
        check = is_greedy_equilibrium(c.game, c.equilibrium) ? "greedy eq"
                                                             : "NOT GE";
      table.begin_row()
          .add(N)
          .add(c.game.node_count())
          .add(alpha, 2)
          .add(measured, 5)
          .add(limit, 5)
          .add(limit - measured, 5)
          .add(check);
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: the measured ratio climbs monotonically towards\n"
               "the paper's limit (3/2 at alpha=1, 3/(alpha+2) below), so the\n"
               "1-2-GNCG lower bound reproduces.\n";
  return 0;
}
