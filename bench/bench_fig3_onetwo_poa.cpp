// Experiment E2 -- Figure 3 / Theorem 8 (tight PoA lower bound, 1-2-GNCG).
//
// Paper claim: on the clique-of-stars 1-2 host the all-1-edges equilibrium
// (without u-to-leaf edges) costs 3N^4 - Theta(N^3) while the optimum costs
// (alpha+2)N^4 + Theta(N^2); the PoA therefore tends to 3/2 for alpha = 1
// and to 3/(alpha+2) for 1/2 <= alpha < 1 as N grows.
//
// The workload itself lives in the sweep subsystem as the registered
// scenario `fig3_onetwo_poa` (src/sweep/scenarios_builtin.cpp); this driver
// only declares the grid, runs it through the SweepRunner and prints the
// table rows the BENCH workflow has always recorded.
#include <iostream>

#include "bench_util.hpp"
#include "sweep/runner.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E2 | Figure 3 / Theorem 8: 1-2-GNCG PoA -> 3/(alpha+2)");

  SweepPlan plan;
  plan.scenarios = {"fig3_onetwo_poa"};
  plan.hosts = {"dense"};
  plan.ns = {2, 3, 4, 6, 8, 10, 12};  // the clique parameter N
  plan.alphas = {0.5, 0.75, 1.0};
  const SweepReport report = run_sweep(plan);

  // Legacy row order: alpha outer, N inner (the plan expands N-major).
  ConsoleTable table({"N", "n", "alpha", "measured ratio", "paper limit",
                      "gap to limit", "equilibrium check"});
  for (const double alpha : plan.alphas)
    for (const int N : plan.ns)
      for (const SweepOutcome& outcome : report.outcomes) {
        if (outcome.point.n != N || outcome.point.alpha != alpha) continue;
        const ScenarioRow& row = outcome.result.rows.front();
        table.begin_row()
            .add(N)
            .add(static_cast<int>(row.metric_or_nan("n_nodes")))
            .add(alpha, 2)
            .add(row.metric_or_nan("measured_ratio"), 5)
            .add(row.metric_or_nan("paper_limit"), 5)
            .add(row.metric_or_nan("gap_to_limit"), 5)
            .add(row.tag_or_empty("equilibrium_check"));
      }
  table.print(std::cout);
  std::cout << "Shape check: the measured ratio climbs monotonically towards\n"
               "the paper's limit (3/2 at alpha=1, 3/(alpha+2) below), so the\n"
               "1-2-GNCG lower bound reproduces.\n";
  return 0;
}
