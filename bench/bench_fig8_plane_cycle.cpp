// Experiment E8 -- Figure 8 / Theorem 17 (no FIP for the 1-norm Rd-GNCG).
//
// Paper claim: the ten exact points a0=(3,0) ... a9=(1,0) under the 1-norm
// admit a best-response cycle, so the Rd-GNCG with the 1-norm has no FIP.
//
// Reproduction: best-response dynamics with profile-revisit detection on
// exactly those ten points; a found cycle is replay-verified move by move
// (every step a strict improvement AND an exact best response).
#include <iostream>

#include "bench_util.hpp"
#include "constructions/cycle_instances.hpp"
#include "core/fip.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E8 | Figure 8 / Theorem 17: BR cycle on the paper's points");
  ConsoleTable table({"alpha", "BR cycle found", "cycle length",
                      "strict improvements", "exact best responses"});
  bool any = false;
  for (double alpha : {0.5, 1.0, 2.0, 3.0}) {
    const auto result = search_theorem17_cycle({alpha}, 24, 8);
    std::string strict = "-";
    std::string exact = "-";
    if (result.found) {
      any = true;
      const Game game(HostGraph::from_points(theorem17_points(), 1.0), alpha);
      strict = verify_improvement_cycle(game, result.analysis.cycle_start,
                                        result.analysis.cycle, false)
                   ? "all"
                   : "NO";
      exact = verify_improvement_cycle(game, result.analysis.cycle_start,
                                       result.analysis.cycle, true)
                  ? "all"
                  : "NO";
    }
    table.begin_row()
        .add(alpha, 2)
        .add(result.found)
        .add(static_cast<long long>(result.analysis.cycle.size()))
        .add(strict)
        .add(exact);
  }
  table.print(std::cout);

  // Print the moves of the alpha = 1 cycle for the record.
  const auto result = search_theorem17_cycle({1.0}, 24, 8);
  if (result.found) {
    std::cout << "\nReplay of the alpha=1 best-response cycle (agent: old "
                 "strategy -> new strategy):\n";
    for (const auto& step : result.analysis.cycle) {
      std::cout << "  a" << step.agent << ": {";
      bool first = true;
      step.old_strategy.for_each([&](int v) {
        std::cout << (first ? "" : ",") << "a" << v;
        first = false;
      });
      std::cout << "} -> {";
      first = true;
      step.new_strategy.for_each([&](int v) {
        std::cout << (first ? "" : ",") << "a" << v;
        first = false;
      });
      std::cout << "}  cost " << format_double(step.old_cost, 3) << " -> "
                << format_double(step.new_cost, 3) << "\n";
    }
  }
  std::cout << (any ? "Shape check: a verified best-response cycle exists on "
                      "the paper's exact\npoint set -- the Rd-GNCG with the "
                      "1-norm has no FIP (Theorem 17).\n"
                    : "No cycle found within budget -- increase attempts.\n");
  return 0;
}
