// Experiment E10 -- Figure 2 / Theorem 4 (deciding NE is NP-hard).
//
// Paper claim: in the vertex-cover gadget (alpha = 1, 1-2 host), every
// agent except u plays a best response; agent u -- who buys 2-edges to a
// vertex cover of size k -- has an improving move if and only if the
// instance admits a vertex cover of size k-1.  Agent u's cost is exactly
// 3N + 6m + k.
//
// Reproduction: random subcubic graphs; u plays (a) a minimum cover and
// (b) a strictly larger cover; the improving-move oracle must say "no" for
// (a) and "yes" for (b), and the cost formula must match to the digit.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/hardness_gadgets.hpp"
#include "core/best_response.hpp"
#include "npc/vertex_cover.hpp"
#include "support/rng.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E10 | Theorem 4: NE decision == vertex cover minimality");
  ConsoleTable table({"N", "m", "min VC", "u plays", "cost(u)", "formula",
                      "improving move", "expected", "verdict"});
  Rng rng(42);
  int correct = 0, total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto instance = random_subcubic_graph(4 + trial % 2, rng);
    const auto minimum = exact_min_vertex_cover(instance);

    auto run_case = [&](const std::vector<int>& cover, bool expect_improving) {
      const auto gadget = theorem4_gadget(instance, cover);
      const double cost = agent_cost(gadget.game, gadget.profile, gadget.agent);
      const double formula = theorem4_agent_cost_formula(
          instance, static_cast<int>(cover.size()));
      const bool improving =
          has_improving_deviation(gadget.game, gadget.profile, gadget.agent);
      const bool ok = improving == expect_improving &&
                      std::abs(cost - formula) < 1e-9;
      ++total;
      correct += ok ? 1 : 0;
      table.begin_row()
          .add(instance.n)
          .add(static_cast<int>(instance.edges.size()))
          .add(static_cast<int>(minimum.size()))
          .add("cover of " + std::to_string(cover.size()))
          .add(cost, 1)
          .add(formula, 1)
          .add(improving)
          .add(expect_improving)
          .add(ok ? "ok" : "MISMATCH");
    };

    run_case(minimum, /*expect_improving=*/false);
    if (minimum.size() < static_cast<std::size_t>(instance.n)) {
      std::vector<int> bigger = minimum;
      for (int v = 0; v < instance.n; ++v) {
        bool used = false;
        for (int c : bigger) used |= (c == v);
        if (!used) {
          bigger.push_back(v);
          break;
        }
      }
      run_case(bigger, /*expect_improving=*/true);
    }
  }
  table.print(std::cout);
  std::cout << "Agreement: " << correct << "/" << total
            << " cases match the Theorem 4 equivalence (recognizing a NE is\n"
               "as hard as deciding vertex-cover minimality).\n";
  return correct == total ? 0 : 1;
}
