// Large-n geometric tier bench (recorded as BENCH_large_geo.json).
//
// Two sections:
//
//  * exact_vs_ladder (moderate n): per-agent cost of the exact
//    branch-and-bound best response vs the approximate-BR ladder
//    (core/approx_br.hpp) on the same euclidean games.  Exact BR is a
//    subset search -- worst-case exponential in the improving-target
//    count -- while one ladder step is a shortlist of `budget` spatial
//    candidates plus a restricted 2^budget search, i.e. polynomial in n
//    for fixed budget.  Soundness is asserted inline: the ladder's cost
//    upper-bounds the exact optimum and its escape lower bound
//    under-bounds it; a violation aborts the bench.
//
//  * large_tier (n = 10^4, 10^5): the regime the exact search cannot
//    touch.  Approx-ladder better-response dynamics over the spatial
//    candidate oracle (run_restarts, round-robin), then a certified
//    per-agent (beta, eps) sample on the reached profile: each sampled
//    agent's current cost divided by the ladder's admissible escape
//    lower bound.  Alongside the timings the section records the memory
//    story: DistanceMatrix::allocated_cells_total() must not move (the
//    euclidean path never materializes O(n^2) state -- a nonzero delta
//    aborts) and the worker-arena peak footprint is reported per node,
//    which stays O(deg) because every scratch buffer is O(n + edges).
//
// The process refuses to record numbers from a non-optimized build
// (--allow-debug overrides, never for recorded numbers).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <vector>

#include "bench_util.hpp"
#include "core/approx_br.hpp"
#include "core/best_response.hpp"
#include "core/cost.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/profile_gen.hpp"
#include "core/restarts.hpp"
#include "graph/distance_matrix.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "support/arena.hpp"
#include "support/instrument.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace gncg {
namespace {

constexpr int kBudget = 8;       ///< spatial shortlist size per ladder call
constexpr double kAlpha = 100.0; ///< edge price for every game in the bench
/// Bounded-frontier repair cap for the large tier: tier-1 probes truncate
/// after this many distance writes and rank candidates by their certified
/// underestimates; only winners pay a full repair.  0 would restore the
/// exact-repair ladder bit for bit.
constexpr std::size_t kRepairCap = 2048;

Game make_geo_game(int n, Rng& rng) {
  return Game(HostGraph::from_points(uniform_points(n, 2, 1000.0, rng), 2.0),
              kAlpha);
}

/// Process-wide counter delta since `before` (all-zero under
/// GNCG_INSTRUMENT=OFF).  Phases are bracketed at quiescent points (after
/// pool joins), so the sums are exact.
instrument::CounterArray counters_since(const instrument::MetricsSnapshot&
                                            before) {
  return instrument::counters_delta(before, instrument::metrics_snapshot());
}

/// Emits a counter delta as one inline JSON object of the nonzero entries.
void print_counter_object(const instrument::CounterArray& counters) {
  std::printf("{");
  bool first = true;
  for (std::size_t i = 0; i < instrument::kCounterCount; ++i) {
    if (counters[i] == 0) continue;
    std::printf("%s\"%s\": %llu", first ? "" : ", ",
                instrument::counter_name(static_cast<instrument::Counter>(i)),
                static_cast<unsigned long long>(counters[i]));
    first = false;
  }
  std::printf("}");
}

// --- section 1: exact branch-and-bound vs the ladder -----------------------

struct ExactVsLadder {
  int n = 0;
  int agents = 0;
  double exact_ms_per_agent = 0.0;
  double ladder_ms_per_agent = 0.0;
  std::uint64_t exact_evaluations = 0;  ///< strategy evaluations, summed
  std::uint64_t ladder_evaluations = 0;
  instrument::CounterArray exact_counters{};   ///< kernel work, exact phase
  instrument::CounterArray ladder_counters{};  ///< kernel work, ladder phase
};

ExactVsLadder bench_exact_vs_ladder(int n, int agents) {
  Rng rng(910u + static_cast<std::uint64_t>(n));
  const Game game(make_geo_game(n, rng));
  DeviationEngine engine(game, random_profile(game, rng));

  ExactVsLadder row;
  row.n = n;
  row.agents = agents;
  std::vector<double> exact_costs;
  {
    const instrument::MetricsSnapshot before = instrument::metrics_snapshot();
    const Stopwatch timer;
    for (int i = 0; i < agents; ++i) {
      const int u = static_cast<int>((static_cast<long long>(i) * n) / agents);
      BestResponseOptions options;
      options.incumbent = engine.agent_cost(u);
      const BestResponseResult br = exact_best_response(engine, u, options);
      exact_costs.push_back(std::min(br.cost, options.incumbent));
      row.exact_evaluations += br.evaluations;
    }
    row.exact_ms_per_agent = timer.millis() / agents;
    row.exact_counters = counters_since(before);
  }
  {
    const instrument::MetricsSnapshot before = instrument::metrics_snapshot();
    const Stopwatch timer;
    for (int i = 0; i < agents; ++i) {
      const int u = static_cast<int>((static_cast<long long>(i) * n) / agents);
      ApproxBrOptions options;
      options.budget = kBudget;
      options.incumbent = engine.agent_cost(u);
      const ApproxBrResult ladder = approx_best_response_ladder(engine, u,
                                                               options);
      row.ladder_evaluations += ladder.evaluations;
      // Soundness against the exact optimum: the ladder's achieved cost
      // can never beat it and the escape lower bound can never exceed it.
      const double exact = exact_costs[static_cast<std::size_t>(i)];
      const double tol = 1e-9 * std::max(1.0, std::abs(exact));
      if (ladder.cost < exact - tol || ladder.lower_bound > exact + tol) {
        std::fprintf(stderr,
                     "FAIL: ladder unsound at n=%d u=%d (exact %.17g, "
                     "ladder cost %.17g, lower bound %.17g)\n",
                     n, u, exact, ladder.cost, ladder.lower_bound);
        std::exit(3);
      }
    }
    row.ladder_ms_per_agent = timer.millis() / agents;
    row.ladder_counters = counters_since(before);
  }
  return row;
}

// --- section 2: the large-n tier -------------------------------------------

struct LargeTier {
  int n = 0;
  std::uint64_t moves = 0;
  double dynamics_ms = 0.0;
  double ms_per_move = 0.0;
  int certified_agents = 0;
  double certify_ms_per_agent = 0.0;
  double max_beta = 1.0;
  double mean_beta = 1.0;
  double max_eps = 0.0;
  int improving_agents = 0;
  int built_edges = 0;
  std::size_t arena_peak_bytes = 0;
  double arena_peak_bytes_per_node = 0.0;
  std::uint64_t arena_shrink_events = 0;
  instrument::CounterArray dynamics_counters{};  ///< kernel work, dynamics
  instrument::CounterArray certify_counters{};   ///< kernel work, certify
};

LargeTier bench_large_tier(int n, std::uint64_t max_moves, int certify) {
  Rng rng(2718u + static_cast<std::uint64_t>(n));
  const std::uint64_t dense_before = DistanceMatrix::allocated_cells_total();
  const Game game(make_geo_game(n, rng));

  RestartOptions options;
  options.restarts = 1;
  options.seed = rng();
  options.label = "bench_large_geo";
  // O(n) start profile: the spanning-random family draws Theta(n^2) extra
  // edges, which already dwarfs the game itself at n = 10^4.
  options.start = StartProfileKind::kRecursiveTree;
  options.dynamics.rule = MoveRule::kApproxLadder;
  options.dynamics.scheduler = SchedulerKind::kRoundRobin;
  options.dynamics.max_moves = max_moves;
  options.dynamics.approx_budget = kBudget;
  options.dynamics.approx_repair_cap = kRepairCap;
  options.dynamics.detect_cycles = false;
  options.dynamics.record_steps = false;

  LargeTier row;
  row.n = n;
  const instrument::MetricsSnapshot dynamics_before =
      instrument::metrics_snapshot();
  const Stopwatch dynamics_timer;
  const RestartReport report = run_restarts(game, options);
  row.dynamics_ms = dynamics_timer.millis();
  row.dynamics_counters = counters_since(dynamics_before);
  const RestartRun* run = nullptr;
  for (const RestartRun& candidate : report.runs)
    if (!candidate.skipped) {
      run = &candidate;
      break;
    }
  if (run == nullptr) {
    std::fprintf(stderr, "FAIL: large tier ran no restart at n=%d\n", n);
    std::exit(3);
  }
  row.moves = run->result.moves;
  row.ms_per_move = row.dynamics_ms / std::max<std::uint64_t>(1, row.moves);
  row.built_edges = run->result.final_profile.built_edge_count();

  DeviationEngine engine(game, run->result.final_profile);
  row.certified_agents = std::min(certify, n);
  std::vector<int> agent_ids;
  for (int i = 0; i < row.certified_agents; ++i)
    agent_ids.push_back(static_cast<int>((static_cast<long long>(i) * n) /
                                         row.certified_agents));
  double beta_sum = 0.0;
  const instrument::MetricsSnapshot certify_before =
      instrument::metrics_snapshot();
  const Stopwatch certify_timer;
  ApproxBrOptions ladder_options;
  ladder_options.budget = kBudget;
  ladder_options.repair_cap = kRepairCap;
  const std::vector<CertifiedAgent> certified =
      certify_agents(engine, agent_ids, ladder_options);
  for (const CertifiedAgent& ca : certified) {
    const ApproxBrResult& ladder = ca.result;
    const double beta_u = ladder.lower_bound > 0.0
                              ? ca.current_cost / ladder.lower_bound
                              : 1.0;
    row.max_beta = std::max(row.max_beta, beta_u);
    beta_sum += beta_u;
    row.max_eps = std::max(
        row.max_eps, std::max(0.0, ca.current_cost - ladder.lower_bound));
    if (ladder.improved) ++row.improving_agents;
  }
  row.certify_ms_per_agent = certify_timer.millis() / row.certified_agents;
  row.certify_counters = counters_since(certify_before);
  row.mean_beta = beta_sum / row.certified_agents;

  const std::uint64_t dense_after = DistanceMatrix::allocated_cells_total();
  if (dense_after != dense_before) {
    std::fprintf(stderr,
                 "FAIL: euclidean path materialized a dense matrix at n=%d "
                 "(%llu cells)\n",
                 n, static_cast<unsigned long long>(dense_after -
                                                    dense_before));
    std::exit(3);
  }
  const ArenaStats arenas = arena_stats();
  row.arena_peak_bytes = arenas.peak_footprint_bytes;
  row.arena_peak_bytes_per_node =
      static_cast<double>(arenas.peak_footprint_bytes) / n;
  row.arena_shrink_events = arenas.shrink_events;
  return row;
}

}  // namespace
}  // namespace gncg

int main(int argc, char** argv) {
  bool smoke = false;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--allow-debug") == 0) allow_debug = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_large_geo [--smoke] [--allow-debug]\n");
      return 1;
    }
  }

  if (!gncg::bench::require_release(allow_debug, "bench_large_geo")) return 2;

  // --- exact vs ladder ---
  const std::vector<int> contrast_sizes =
      smoke ? std::vector<int>{32} : std::vector<int>{32, 64, 128};
  std::vector<gncg::ExactVsLadder> contrast;
  for (int n : contrast_sizes) {
    contrast.push_back(gncg::bench_exact_vs_ladder(n, smoke ? 4 : 8));
    const auto& c = contrast.back();
    std::fprintf(stderr,
                 "exact_vs_ladder n=%-4d exact %.2f ms/agent (%llu evals), "
                 "ladder %.2f ms/agent (%llu evals)\n",
                 c.n, c.exact_ms_per_agent,
                 static_cast<unsigned long long>(c.exact_evaluations),
                 c.ladder_ms_per_agent,
                 static_cast<unsigned long long>(c.ladder_evaluations));
  }

  // --- large tier ---
  struct Point {
    int n;
    std::uint64_t max_moves;
    int certify;
  };
  const std::vector<Point> points =
      smoke ? std::vector<Point>{{2000, 12, 4}}
            : std::vector<Point>{
                  {10000, 300, 8}, {100000, 30, 4}, {1000000, 6, 2}};
  std::vector<gncg::LargeTier> tiers;
  for (const Point& point : points) {
    tiers.push_back(
        gncg::bench_large_tier(point.n, point.max_moves, point.certify));
    const auto& t = tiers.back();
    std::fprintf(stderr,
                 "large_tier n=%-6d moves=%llu (%.1f ms/move), certify "
                 "%.1f ms/agent, max_beta %.3f, peak arena %.1f B/node\n",
                 t.n, static_cast<unsigned long long>(t.moves), t.ms_per_move,
                 t.certify_ms_per_agent, t.max_beta,
                 t.arena_peak_bytes_per_node);
  }

  std::printf("{\n");
  std::printf(
      "  \"description\": \"Large-n geometric tier: exact branch-and-bound "
      "best response vs the approximate-BR ladder on euclidean games "
      "(per-agent cost and evaluation counts; ladder soundness against the "
      "exact optimum asserted inline), then bounded-frontier approx-ladder "
      "dynamics (repair_cap truncates tier-1 probe repairs; only winning "
      "candidates pay a full repair) plus a batched certify_agents per-agent "
      "(beta, eps) sample at n = 10^4, 10^5 and 10^6 with the "
      "dense-matrix-free contract enforced "
      "(DistanceMatrix::allocated_cells_total() unchanged) and the worker-"
      "arena peak footprint reported per node.  Every phase carries its "
      "kernel-counter delta (nonzero entries only; empty under "
      "GNCG_INSTRUMENT=OFF), so the ladder cost split -- base Dijkstra "
      "relaxations vs incremental repairs vs restricted-search expansions "
      "-- is recorded, not guessed.\",\n");
  {
    char alpha_json[32], budget_json[32], cap_json[32];
    std::snprintf(alpha_json, sizeof alpha_json, "%.1f", gncg::kAlpha);
    std::snprintf(budget_json, sizeof budget_json, "%d", gncg::kBudget);
    std::snprintf(cap_json, sizeof cap_json, "%zu", gncg::kRepairCap);
    gncg::bench::print_context(
        std::string("./build/bench_large_geo") + (smoke ? " --smoke" : ""),
        gncg::default_thread_count(),
        {{"alpha", alpha_json},
         {"budget", budget_json},
         {"repair_cap", cap_json}});
  }
  std::printf("  \"exact_vs_ladder\": [\n");
  for (std::size_t i = 0; i < contrast.size(); ++i) {
    const auto& c = contrast[i];
    std::printf(
        "    {\"n\": %d, \"agents\": %d, \"exact_ms_per_agent\": %.3f, "
        "\"ladder_ms_per_agent\": %.3f, \"exact_evaluations\": %llu, "
        "\"ladder_evaluations\": %llu, \"ladder_speedup\": %.2f,\n",
        c.n, c.agents, c.exact_ms_per_agent, c.ladder_ms_per_agent,
        static_cast<unsigned long long>(c.exact_evaluations),
        static_cast<unsigned long long>(c.ladder_evaluations),
        c.ladder_ms_per_agent > 0.0
            ? c.exact_ms_per_agent / c.ladder_ms_per_agent
            : 0.0);
    std::printf("     \"exact_counters\": ");
    gncg::print_counter_object(c.exact_counters);
    std::printf(",\n     \"ladder_counters\": ");
    gncg::print_counter_object(c.ladder_counters);
    std::printf("}%s\n", i + 1 < contrast.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"large_tier\": [\n");
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const auto& t = tiers[i];
    std::printf(
        "    {\"n\": %d, \"moves\": %llu, \"ms_per_move\": %.1f, "
        "\"certified_agents\": %d, \"certify_ms_per_agent\": %.1f, "
        "\"max_beta\": %.4f, \"mean_beta\": %.4f, \"max_eps\": %.4f, "
        "\"improving_agents\": %d, \"built_edges\": %d, "
        "\"arena_peak_bytes\": %zu, \"arena_peak_bytes_per_node\": %.1f, "
        "\"arena_shrink_events\": %llu,\n",
        t.n, static_cast<unsigned long long>(t.moves), t.ms_per_move,
        t.certified_agents, t.certify_ms_per_agent, t.max_beta, t.mean_beta,
        t.max_eps, t.improving_agents, t.built_edges, t.arena_peak_bytes,
        t.arena_peak_bytes_per_node,
        static_cast<unsigned long long>(t.arena_shrink_events));
    std::printf("     \"dynamics_counters\": ");
    gncg::print_counter_object(t.dynamics_counters);
    std::printf(",\n     \"certify_counters\": ");
    gncg::print_counter_object(t.certify_counters);
    std::printf("}%s\n", i + 1 < tiers.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
