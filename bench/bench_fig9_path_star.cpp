// Experiment E11 -- Figure 9 / Lemma 8 (PoA > 1 for points on a line).
//
// Paper claim: for the geometric path v_0..v_n with gaps (2/a)(1+2/a)^(i-2)
// the spanning star centered at v_0 is a NE; its cost strictly exceeds the
// path optimum for every n >= 2, so the Rd-GNCG PoA is > 1 for every
// p-norm and dimension.  (The path is the optimum; edge betweenness gives
// its distance cost, which is how the paper derives the closed form.)
#include <iostream>

#include "bench_util.hpp"
#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium.hpp"
#include "core/social_optimum.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout, "E11 | Figure 9 / Lemma 8: line-metric PoA > 1");
  ConsoleTable table({"nodes", "alpha", "NE star cost", "path cost",
                      "measured ratio", "ratio > 1", "equilibrium check",
                      "path = exact OPT"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    for (int nodes : {3, 4, 6, 8, 12, 16}) {
      const auto c = lemma8_construction(nodes, alpha);
      const double ne_cost = social_cost(c.game, c.equilibrium);
      const double path_cost = network_social_cost(c.game, c.optimum);
      std::string check = "-";
      if (nodes <= 10)
        check = is_nash_equilibrium(c.game, c.equilibrium) ? "exact NE"
                                                           : "NOT NE";
      std::string opt_check = "-";
      if (nodes <= 6) {
        const auto exact = exact_social_optimum(c.game);
        opt_check = bench::verdict(path_cost, exact.cost.total());
      }
      table.begin_row()
          .add(nodes)
          .add(alpha, 2)
          .add(ne_cost, 4)
          .add(path_cost, 4)
          .add(ne_cost / path_cost, 5)
          .add(ne_cost / path_cost > 1.0)
          .add(check)
          .add(opt_check);
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: every row has ratio > 1 with a verified NE, as\n"
               "Lemma 8 claims for the 1-dimensional Rd-GNCG.\n";
  return 0;
}
