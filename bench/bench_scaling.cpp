// SSSP-kernel and multi-core scaling bench (recorded as BENCH_scaling.json).
//
// Two sections:
//
//  * sssp_kernel (single thread): the layout/kernel ablation behind this
//    PR's perf work.  One all-sources distance sweep over the built network
//    of a random profile, three ways:
//      - vecvec_heap: the pre-PR layout -- build_adjacency's per-node
//        std::vector<Neighbor> lists walked by the thread-local binary-heap
//        Dijkstra;
//      - csr_heap:   the engine's flat CSR slab, heap kernel (dial forced
//        off);
//      - csr_dial:   CSR slab + bucket-queue kernel (integer-weight hosts).
//    All three must produce the bit-identical distance-sum checksum (same
//    relaxation order / same integer fixpoint); a mismatch aborts.  The
//    recorded speedup_total = vecvec_heap / csr_dial is the PR's >= 2x
//    single-thread acceptance gate on an SSSP-dominated workload.
//
//  * thread_curves: run_restarts, best-response certification fan-out and
//    the warm single-move sweep at 1/2/4/8 workers.  Every workload's
//    results must be byte-identical across thread counts (the determinism
//    contract); a divergence aborts.  On hosts with fewer visible CPUs than
//    the curve (CI containers are often 1-CPU) the context block carries
//    "parallelism_limited": true -- the curves then measure oversubscribed
//    determinism, not speedup.
//
// The process refuses to record numbers from a non-optimized build
// (--allow-debug overrides, never for recorded numbers).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/profile_gen.hpp"
#include "core/restarts.hpp"
#include "metric/host_graph.hpp"
#include "support/arena.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace gncg {
namespace {

// --- section 1: single-thread SSSP kernel ablation -------------------------

struct KernelResult {
  int n = 0;
  int sweeps = 0;
  int dial_bound = 0;
  double vecvec_heap_ms = 0.0;
  double csr_heap_ms = 0.0;
  double csr_dial_ms = 0.0;
};

KernelResult bench_sssp_kernel(int n, int sweeps) {
  Rng rng(777u + static_cast<std::uint64_t>(n));
  const Game game(random_one_two_host(n, 0.5, rng), 1.5);
  const StrategyProfile profile = random_profile(game, rng, 0.3);

  KernelResult result;
  result.n = n;
  result.sweeps = sweeps;
  result.dial_bound = game.host().dial_weight_bound();

  // Pre-PR layout: per-node vectors + thread-local heap workspace.
  const auto vecvec = build_adjacency(game, profile);
  const auto vecvec_fn = [&](int u, auto&& visit) {
    for (const auto& nb : vecvec[static_cast<std::size_t>(u)])
      visit(nb.to, nb.weight);
  };
  double checksum_vecvec = 0.0;
  {
    const Stopwatch timer;
    for (int s = 0; s < sweeps; ++s) {
      double total = 0.0;
      for (int source = 0; source < n; ++source) {
        const auto& dist = tls_dijkstra_buffers().run(n, source, vecvec_fn);
        for (double d : dist) total += d;
      }
      checksum_vecvec = total;
    }
    result.vecvec_heap_ms = timer.millis();
  }

  DeviationEngine engine(game, profile);
  const auto csr_fn = [&](int u, auto&& visit) {
    for (const auto& nb : engine.adjacency().neighbors(u))
      visit(nb.to, nb.weight);
  };
  double checksum_csr_heap = 0.0;
  {
    DijkstraBuffers& heap = worker_arena().dijkstra();
    const Stopwatch timer;
    for (int s = 0; s < sweeps; ++s) {
      double total = 0.0;
      for (int source = 0; source < n; ++source) {
        const auto& dist = heap.run(n, source, csr_fn);
        for (double d : dist) total += d;
      }
      checksum_csr_heap = total;
    }
    result.csr_heap_ms = timer.millis();
  }
  double checksum_csr_dial = 0.0;
  {
    DialBuffers& dial = worker_arena().dial();
    const Stopwatch timer;
    for (int s = 0; s < sweeps; ++s) {
      double total = 0.0;
      for (int source = 0; source < n; ++source) {
        const auto& dist = dial.run(n, source, result.dial_bound, csr_fn);
        for (double d : dist) total += d;
      }
      checksum_csr_dial = total;
    }
    result.csr_dial_ms = timer.millis();
  }

  // Same enumeration order and exact-integer distances: the checksums must
  // be bit-identical across all three variants.
  if (checksum_vecvec != checksum_csr_heap ||
      checksum_vecvec != checksum_csr_dial) {
    std::fprintf(stderr,
                 "FAIL: kernel checksums diverge at n=%d "
                 "(vecvec %.17g, csr_heap %.17g, csr_dial %.17g)\n",
                 n, checksum_vecvec, checksum_csr_heap, checksum_csr_dial);
    std::exit(3);
  }
  return result;
}

// --- section 2: thread-count curves ----------------------------------------

struct Curve {
  int n = 0;
  int work = 0;  ///< restarts / certified agents / sweep rounds
  std::vector<double> ms;  ///< one entry per thread count
};

/// run_restarts at every thread count; converged count and total moves must
/// be identical everywhere (the PR-3 determinism contract).
Curve bench_restarts_curve(int n, int restarts,
                           const std::vector<int>& thread_counts) {
  Rng rng(4242u + static_cast<std::uint64_t>(n));
  const Game game(random_one_two_host(n, 0.5, rng), 1.5);
  RestartOptions options;
  options.restarts = restarts;
  options.seed = 11;
  options.label = "bench_scaling";
  options.start = StartProfileKind::kRecursiveTree;
  options.dynamics.rule = MoveRule::kBestSingleMove;
  options.dynamics.scheduler = SchedulerKind::kRoundRobin;
  options.dynamics.max_moves = 48;
  options.dynamics.record_steps = false;

  Curve curve;
  curve.n = n;
  curve.work = restarts;
  std::size_t ref_converged = 0;
  std::uint64_t ref_moves = 0;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    set_default_thread_count(static_cast<std::size_t>(thread_counts[t]));
    const Stopwatch timer;
    const RestartReport report = run_restarts(game, options);
    curve.ms.push_back(timer.millis());
    std::uint64_t moves = 0;
    for (const auto& run : report.runs) moves += run.result.moves;
    if (t == 0) {
      ref_converged = report.converged;
      ref_moves = moves;
    } else if (report.converged != ref_converged || moves != ref_moves) {
      std::fprintf(stderr,
                   "FAIL: run_restarts diverges at n=%d threads=%d\n", n,
                   thread_counts[t]);
      std::exit(3);
    }
  }
  return curve;
}

/// Per-agent exact best-response certification (first-improvement, current
/// cost as incumbent) -- the search's parallel branch fan-out under the
/// hood.  Improving-agent sets must match across thread counts.
Curve bench_br_curve(int n, const std::vector<int>& thread_counts) {
  Rng rng(5151u + static_cast<std::uint64_t>(n));
  const Game game(random_one_two_host(n, 0.5, rng), static_cast<double>(n));
  DynamicsOptions settle;
  settle.rule = MoveRule::kBestSingleMove;
  settle.scheduler = SchedulerKind::kRoundRobin;
  settle.max_moves = static_cast<std::uint64_t>(4) * n;
  settle.detect_cycles = false;
  const auto settled =
      run_dynamics(game, recursive_tree_profile(game, rng), settle);
  DeviationEngine engine(game, settled.final_profile);

  Curve curve;
  curve.n = n;
  curve.work = n;
  std::vector<char> ref_improving;
  std::vector<double> ref_costs;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    set_default_thread_count(static_cast<std::size_t>(thread_counts[t]));
    std::vector<char> improving;
    std::vector<double> costs;
    const Stopwatch timer;
    for (int u = 0; u < n; ++u) {
      BestResponseOptions options;
      options.incumbent = engine.agent_cost(u);
      options.first_improvement = true;
      const BestResponseResult br = exact_best_response(engine, u, options);
      improving.push_back(br.improved ? 1 : 0);
      costs.push_back(br.cost);
    }
    curve.ms.push_back(timer.millis());
    if (t == 0) {
      ref_improving = std::move(improving);
      ref_costs = std::move(costs);
    } else if (improving != ref_improving || costs != ref_costs) {
      std::fprintf(stderr,
                   "FAIL: best-response certification diverges at n=%d "
                   "threads=%d\n",
                   n, thread_counts[t]);
      std::exit(3);
    }
  }
  return curve;
}

/// Warm single-move sweep: flip an edge, re-warm every distance cache in
/// parallel, scan every agent's best single move in parallel.  The cost
/// vector must be byte-identical across thread counts.
Curve bench_sweep_curve(int n, int rounds,
                        const std::vector<int>& thread_counts) {
  Rng rng(6363u + static_cast<std::uint64_t>(n));
  const Game game(random_one_two_host(n, 0.5, rng), 1.5);
  DeviationEngine engine(game, random_profile(game, rng, 0.2));
  int flip_u = -1, flip_v = -1;
  for (int u = 0; u < n && flip_u < 0; ++u)
    for (int v = u + 1; v < n; ++v)
      if (!engine.profile().has_edge(u, v)) {
        flip_u = u;
        flip_v = v;
        break;
      }

  Curve curve;
  curve.n = n;
  curve.work = rounds;
  std::vector<double> ref_costs;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    set_default_thread_count(static_cast<std::size_t>(thread_counts[t]));
    std::vector<double> costs(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(rounds));
    const Stopwatch timer;
    for (int r = 0; r < rounds; ++r) {
      if (r % 2 == 0) engine.add_buy(flip_u, flip_v);
      else engine.remove_buy(flip_u, flip_v);
      engine.warm_distances();
      double* row = costs.data() + static_cast<std::size_t>(r) * n;
      parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t a) {
        row[a] = engine.best_single_move_warm(static_cast<int>(a)).cost;
      });
    }
    curve.ms.push_back(timer.millis());
    // Leave the profile as found for the next thread count.
    if (rounds % 2 == 1) engine.remove_buy(flip_u, flip_v);
    if (t == 0) {
      ref_costs = std::move(costs);
    } else if (costs != ref_costs) {
      std::fprintf(stderr,
                   "FAIL: single-move sweep diverges at n=%d threads=%d\n", n,
                   thread_counts[t]);
      std::exit(3);
    }
  }
  return curve;
}

void print_curves(const char* key, const std::vector<Curve>& curves,
                  bool trailing_comma) {
  std::printf("  \"%s\": [\n", key);
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const Curve& c = curves[i];
    std::printf("    {\"n\": %d, \"work\": %d, \"ms\": [", c.n, c.work);
    for (std::size_t t = 0; t < c.ms.size(); ++t)
      std::printf("%s%.1f", t == 0 ? "" : ", ", c.ms[t]);
    std::printf("], \"speedup\": [");
    for (std::size_t t = 0; t < c.ms.size(); ++t)
      std::printf("%s%.2f", t == 0 ? "" : ", ",
                  c.ms[t] > 0.0 ? c.ms.front() / c.ms[t] : 0.0);
    std::printf("]}%s\n", i + 1 < curves.size() ? "," : "");
  }
  std::printf("  ]%s\n", trailing_comma ? "," : "");
}

}  // namespace
}  // namespace gncg

int main(int argc, char** argv) {
  bool smoke = false;
  bool allow_debug = false;
  bool kernel_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--allow-debug") == 0) allow_debug = true;
    // Single-thread SSSP kernel section only: the loop used to measure the
    // GNCG_INSTRUMENT=ON-vs-OFF overhead (run both builds back to back and
    // compare csr_* times) without paying for the thread-curve sections.
    else if (std::strcmp(argv[i], "--kernel-only") == 0) kernel_only = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_scaling [--smoke] [--kernel-only] "
                   "[--allow-debug]\n");
      return 1;
    }
  }

  if (!gncg::bench::require_release(allow_debug, "bench_scaling")) return 2;

  const std::vector<int> thread_counts{1, 2, 4, 8};
  const unsigned num_cpus = std::thread::hardware_concurrency();
  const bool parallelism_limited =
      num_cpus < static_cast<unsigned>(thread_counts.back());
  if (parallelism_limited)
    std::fprintf(stderr,
                 "bench_scaling: only %u CPU(s) visible; thread curves "
                 "measure oversubscribed determinism, not speedup "
                 "(parallelism_limited).\n",
                 num_cpus);

  // Size the worker pool for the largest point on the curve BEFORE its lazy
  // construction (the pool is built once, at first parallel use).
  gncg::set_default_thread_count(
      static_cast<std::size_t>(thread_counts.back()));
  gncg::parallel_for(0, 64, [](std::size_t) {}, 1, 1);

  // --- single-thread kernel ablation ---
  gncg::set_default_thread_count(1);
  const std::vector<int> kernel_sizes =
      smoke ? std::vector<int>{128} : std::vector<int>{256, 512};
  const int sweeps = smoke ? 2 : 5;
  std::vector<gncg::KernelResult> kernels;
  for (int n : kernel_sizes) {
    kernels.push_back(gncg::bench_sssp_kernel(n, sweeps));
    const auto& k = kernels.back();
    std::fprintf(stderr,
                 "sssp_kernel n=%-4d vecvec+heap %.1f ms, csr+heap %.1f ms, "
                 "csr+dial %.1f ms (total speedup %.2fx)\n",
                 k.n, k.vecvec_heap_ms, k.csr_heap_ms, k.csr_dial_ms,
                 k.csr_dial_ms > 0.0 ? k.vecvec_heap_ms / k.csr_dial_ms : 0.0);
  }

  // --- thread curves ---
  std::vector<gncg::Curve> restart_curves;
  std::vector<gncg::Curve> br_curves;
  std::vector<gncg::Curve> sweep_curves;
  if (!kernel_only) {
    for (int n : smoke ? std::vector<int>{48} : std::vector<int>{64, 128})
      restart_curves.push_back(
          gncg::bench_restarts_curve(n, smoke ? 8 : 16, thread_counts));
    for (int n : smoke ? std::vector<int>{32} : std::vector<int>{64})
      br_curves.push_back(gncg::bench_br_curve(n, thread_counts));
    for (int n : smoke ? std::vector<int>{128} : std::vector<int>{256, 512})
      sweep_curves.push_back(
          gncg::bench_sweep_curve(n, smoke ? 4 : 8, thread_counts));
  }
  gncg::set_default_thread_count(0);

  for (const auto& curves : {restart_curves, br_curves, sweep_curves})
    for (const auto& c : curves)
      std::fprintf(stderr, "curve n=%-4d work=%-4d ms=[%.1f, %.1f, %.1f, %.1f]\n",
                   c.n, c.work, c.ms[0], c.ms[1], c.ms[2], c.ms[3]);

  std::printf("{\n");
  std::printf(
      "  \"description\": \"SSSP kernel ablation (single thread: pre-PR "
      "vec-of-vec adjacency + binary-heap Dijkstra vs flat CSR slab with "
      "heap and bucket-queue kernels; bit-identical distance checksums "
      "enforced, speedup_total is the recorded >= 2x gate) and thread-count "
      "curves at 1/2/4/8 workers for run_restarts, exact best-response "
      "certification and the warm single-move sweep (results byte-identical "
      "across thread counts by the determinism contract; a divergence fails "
      "the bench).\",\n");
  gncg::bench::print_context(
      std::string("./build/bench_scaling") + (smoke ? " --smoke" : "") +
          (kernel_only ? " --kernel-only" : ""),
      static_cast<std::size_t>(thread_counts.back()));
  std::printf("  \"thread_counts\": [1, 2, 4, 8],\n");
  std::printf("  \"sssp_kernel\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = kernels[i];
    std::printf(
        "    {\"n\": %d, \"sweeps\": %d, \"dial_bound\": %d, "
        "\"vecvec_heap_ms\": %.1f, \"csr_heap_ms\": %.1f, \"csr_dial_ms\": "
        "%.1f, \"speedup_csr\": %.2f, \"speedup_total\": %.2f}%s\n",
        k.n, k.sweeps, k.dial_bound, k.vecvec_heap_ms, k.csr_heap_ms,
        k.csr_dial_ms,
        k.csr_heap_ms > 0.0 ? k.vecvec_heap_ms / k.csr_heap_ms : 0.0,
        k.csr_dial_ms > 0.0 ? k.vecvec_heap_ms / k.csr_dial_ms : 0.0,
        i + 1 < kernels.size() ? "," : "");
  }
  std::printf("  ],\n");
  gncg::print_curves("restart_throughput", restart_curves, true);
  gncg::print_curves("br_certification", br_curves, true);
  gncg::print_curves("single_move_sweep", sweep_curves, false);
  std::printf("}\n");
  return 0;
}
