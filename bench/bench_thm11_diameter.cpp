// Experiment E4 -- Theorems 10 + 11 (1-2-GNCG for alpha > 1).
//
// Paper claims: (Thm 10) for alpha >= 3 every spanning star is a NE;
// (Thm 11) every NE has weighted diameter O(sqrt(alpha)), which via Lemma 7
// gives PoA = O(sqrt(alpha)) -- i.e. the 1-2-GNCG behaves like the NCG.
//
// Reproduction: (a) star NE verification across alpha; (b) equilibria
// reached by dynamics on random 1-2 hosts -- their weighted diameters are
// compared against the sqrt(alpha) scale (diameters also cap at 2(n-1), so
// rows report both).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E4 | Theorems 10+11: stars and O(sqrt(alpha)) diameters");
  Rng rng(11);

  std::cout << "\n(a) Theorem 10: spanning stars on random 1-2 hosts:\n";
  ConsoleTable stars({"n", "alpha", "star is NE", "paper expectation"});
  for (double alpha : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    const Game game(random_one_two_host(7, 0.5, rng), alpha);
    const bool ne = is_nash_equilibrium(game, star_profile(game, 0));
    stars.begin_row()
        .add(7)
        .add(alpha, 1)
        .add(ne)
        .add(alpha >= 3.0 ? "NE (Thm 10)" : "not guaranteed");
  }
  stars.print(std::cout);

  std::cout << "\n(b) Theorem 11: equilibrium diameters under growing alpha "
               "(greedy-stable states, n = 24):\n";
  ConsoleTable diam({"alpha", "sqrt(alpha)", "measured diameter",
                     "diameter / sqrt(alpha)", "trivial cap 2(n-1)"});
  const int n = 24;
  for (double alpha : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    double worst = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      const Game game(random_one_two_host(n, 0.5, rng), alpha);
      DynamicsOptions options;
      options.rule = MoveRule::kBestSingleMove;
      options.max_moves = 20000;
      options.seed = rng();
      const auto run = run_dynamics(game, random_profile(game, rng), options);
      if (!run.converged) continue;
      worst = std::max(worst, diameter(built_graph(game, run.final_profile)));
    }
    diam.begin_row()
        .add(alpha, 1)
        .add(std::sqrt(alpha), 2)
        .add(worst, 1)
        .add(worst / std::sqrt(alpha), 3)
        .add(2.0 * (n - 1), 0);
  }
  diam.print(std::cout);
  std::cout
      << "Shape check: stars verify as NE exactly from alpha >= 3 on, and\n"
         "equilibrium diameters stay far below the sqrt(alpha) scale (the\n"
         "diameter/sqrt(alpha) column shrinks), consistent with Theorem 11's\n"
         "O(sqrt(alpha)) bound and the NCG-like behaviour of the 1-2-GNCG.\n";
  return 0;
}
