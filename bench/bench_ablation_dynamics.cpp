// Experiment E20 (ablation) -- move rules and activation schedulers.
//
// The dynamics engine exposes three design choices the paper's theory
// motivates but does not fix: the move rule (exact best response vs the GE
// single-move set vs the UMFL 3-approximate response) and the activation
// scheduler (round-robin, random order, max-gain).  This ablation measures,
// per combination: convergence rate, moves to convergence, quality of the
// reached state (social cost relative to the best rule), and wall time --
// quantifying the trade-off between the exponential exact rule and the
// polynomial approximations that the library uses at scale.
#include <iostream>

#include "bench_util.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E20 (ablation) | move rules x schedulers on M-GNCG (n=9)");
  Rng rng(2020);

  const struct {
    const char* name;
    MoveRule rule;
  } rules[] = {{"best-response", MoveRule::kBestResponse},
               {"single-move", MoveRule::kBestSingleMove},
               {"umfl-approx", MoveRule::kUmflResponse}};
  const struct {
    const char* name;
    SchedulerKind kind;
  } schedulers[] = {{"round-robin", SchedulerKind::kRoundRobin},
                    {"random", SchedulerKind::kRandomOrder},
                    {"max-gain", SchedulerKind::kMaxGain}};

  // Shared instance set so all combinations face identical games.
  std::vector<Game> games;
  std::vector<StrategyProfile> starts;
  for (int i = 0; i < 6; ++i) {
    games.emplace_back(random_metric_host(9, rng), 1.0);
    starts.push_back(random_profile(games.back(), rng));
  }

  ConsoleTable table({"rule", "scheduler", "converged", "avg moves",
                      "avg cost", "greedy-stable", "avg ms"});
  for (const auto& rule : rules) {
    for (const auto& sched : schedulers) {
      RunningStats moves, costs, millis;
      int converged = 0, stable = 0;
      for (std::size_t i = 0; i < games.size(); ++i) {
        DynamicsOptions options;
        options.rule = rule.rule;
        options.scheduler = sched.kind;
        options.max_moves = 2000;
        // Independent stream per (rule, scheduler, instance): raw `base + i`
        // seeds are correlated shifts of one another (see stream_seed).
        options.seed = stream_seed(
            std::string(rule.name) + "/" + sched.name, i, 2020);
        Stopwatch timer;
        const auto run = run_dynamics(games[i], starts[i], options);
        millis.add(timer.millis());
        if (!run.converged) continue;
        ++converged;
        moves.add(static_cast<double>(run.moves));
        costs.add(social_cost(games[i], run.final_profile));
        if (is_greedy_equilibrium(games[i], run.final_profile)) ++stable;
      }
      table.begin_row()
          .add(rule.name)
          .add(sched.name)
          .add(std::to_string(converged) + "/" + std::to_string(games.size()))
          .add(moves.count() ? moves.mean() : 0.0, 1)
          .add(costs.count() ? costs.mean() : 0.0, 2)
          .add(std::to_string(stable) + "/" + std::to_string(converged))
          .add(millis.mean(), 2);
    }
  }
  table.print(std::cout);
  std::cout
      << "Reading: the exact best-response rule pays exponential per-move\n"
         "cost for slightly better equilibria; the single-move (GE) rule\n"
         "converges fastest; the UMFL rule scales polynomially and still\n"
         "lands on greedy-stable states -- the trade-offs the library's\n"
         "large-instance defaults are built on.\n";
  return 0;
}
