// Experiment E20 (ablation) -- move rules and activation schedulers.
//
// The dynamics kernel exposes two policy axes the paper's theory motivates
// but does not fix: the move rule (exact best response vs the GE
// single-move set vs the UMFL 3-approximate response) and the activation
// scheduler (round-robin, random order, max-gain, fairness-bounded,
// softmax-gain).  This ablation is a thin wrapper over run_restarts: every
// rule x scheduler combination runs the same per-instance restart labels
// over the same shared instance set, so all combinations face identical
// games and identical start profiles, and the aggregate columns come
// straight from the RestartReport / SampleStats -- nothing is recomputed
// from raw step traces.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/equilibrium.hpp"
#include "core/restarts.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E20 (ablation) | move rules x schedulers on M-GNCG (n=9)");
  // Shared instance set so all combinations face identical games (two
  // restarts each: instance variance AND start variance contribute).
  Rng rng(2020);
  std::vector<Game> games;
  for (int i = 0; i < 3; ++i) games.emplace_back(random_metric_host(9, rng), 1.0);
  constexpr int kRestartsPerGame = 2;

  const MoveRule rules[] = {MoveRule::kBestResponse, MoveRule::kBestSingleMove,
                            MoveRule::kUmflResponse};
  const SchedulerKind schedulers[] = {
      SchedulerKind::kRoundRobin, SchedulerKind::kRandomOrder,
      SchedulerKind::kMaxGain, SchedulerKind::kFairnessBounded,
      SchedulerKind::kSoftmaxGain};

  // "wall ms" is the wall-clock of all run_restarts calls of the combo:
  // restarts share the worker pool, so it is comparable across combinations
  // (same pool for every row) but is NOT a per-run cost on multi-core
  // machines.
  ConsoleTable table({"rule", "scheduler", "converged", "avg moves",
                      "avg gain", "avg cost", "greedy-stable", "wall ms"});
  for (const auto rule : rules) {
    for (const auto scheduler : schedulers) {
      SampleStats moves;
      RunningStats costs, gains;
      int stable = 0;
      std::size_t converged = 0, total = 0;
      double total_ms = 0.0;
      for (std::size_t g = 0; g < games.size(); ++g) {
        RestartOptions options;
        options.restarts = kRestartsPerGame;
        options.seed = 2020;
        // Per-instance label shared by every combination: identical
        // starts per (instance, restart) across all rule x scheduler rows.
        options.label = "ablation_dynamics/" + std::to_string(g);
        options.dynamics.rule = rule;
        options.dynamics.scheduler = scheduler;
        options.dynamics.max_moves = 2000;
        options.dynamics.record_steps = false;

        const Stopwatch timer;
        const RestartReport report = run_restarts(games[g], options);
        total_ms += timer.millis();
        converged += report.converged;
        total += report.runs.size();
        moves.merge(report.moves_to_convergence);
        for (const auto& run : report.runs) {
          if (!run.result.converged) continue;
          costs.add(social_cost(games[g], run.result.final_profile));
          if (run.result.step_gains.count() > 0)
            gains.add(run.result.step_gains.mean());
          if (is_greedy_equilibrium(games[g], run.result.final_profile))
            ++stable;
        }
      }
      table.begin_row()
          .add(std::string(move_rule_name(rule)))
          .add(std::string(scheduler_name(scheduler)))
          .add(std::to_string(converged) + "/" + std::to_string(total))
          .add(moves.count() > 0 ? moves.mean() : 0.0, 1)
          .add(gains.count() ? gains.mean() : 0.0, 2)
          .add(costs.count() ? costs.mean() : 0.0, 2)
          .add(std::to_string(stable) + "/" + std::to_string(converged))
          .add(total_ms, 2);
    }
  }
  table.print(std::cout);
  std::cout
      << "Reading: the exact best-response rule pays exponential per-move\n"
         "cost for slightly better equilibria; the single-move (GE) rule\n"
         "converges fastest; the UMFL rule scales polynomially and still\n"
         "lands on greedy-stable states.  Fairness-bounded tracks max-gain\n"
         "while guaranteeing no improving agent starves; softmax-gain\n"
         "randomizes between them.  All combinations run the identical\n"
         "start profiles via the shared restart label.\n";
  return 0;
}
