// Shared helpers for the experiment benches: every bench prints
// paper-value vs measured-value rows through these utilities.
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/game.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace gncg::bench {

/// Measured / expected agreement marker for result tables.
inline std::string verdict(double measured, double expected,
                           double tolerance = 1e-6) {
  if (!(expected < kInf) && !(measured < kInf)) return "ok";
  const double scale = std::max({1.0, std::abs(expected), std::abs(measured)});
  return std::abs(measured - expected) <= tolerance * scale ? "ok" : "MISMATCH";
}

/// "holds" / "VIOLATED" marker for one-sided bounds.
inline std::string bound_verdict(double measured, double bound,
                                 double tolerance = 1e-6) {
  return measured <= bound + tolerance * std::max(1.0, std::abs(bound))
             ? "holds"
             : "VIOLATED";
}

/// Social-cost ratio of a claimed equilibrium profile over a reference
/// network (the measured PoA contribution of a construction).
inline double measured_ratio(const Game& game, const StrategyProfile& ne,
                             const std::vector<Edge>& optimum) {
  return social_cost(game, ne) / network_social_cost(game, optimum);
}

}  // namespace gncg::bench
