// Shared helpers for the experiment benches: every bench prints
// paper-value vs measured-value rows through these utilities, and every
// BENCH_*.json carries the same provenance block (print_context).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cost.hpp"
#include "core/game.hpp"
#include "support/arena.hpp"
#include "support/instrument.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace gncg::bench {

/// Measured / expected agreement marker for result tables.
inline std::string verdict(double measured, double expected,
                           double tolerance = 1e-6) {
  if (!(expected < kInf) && !(measured < kInf)) return "ok";
  const double scale = std::max({1.0, std::abs(expected), std::abs(measured)});
  return std::abs(measured - expected) <= tolerance * scale ? "ok" : "MISMATCH";
}

/// "holds" / "VIOLATED" marker for one-sided bounds.
inline std::string bound_verdict(double measured, double bound,
                                 double tolerance = 1e-6) {
  return measured <= bound + tolerance * std::max(1.0, std::abs(bound))
             ? "holds"
             : "VIOLATED";
}

/// Social-cost ratio of a claimed equilibrium profile over a reference
/// network (the measured PoA contribution of a construction).
inline double measured_ratio(const Game& game, const StrategyProfile& ne,
                             const std::vector<Edge>& optimum) {
  return social_cost(game, ne) / network_social_cost(game, optimum);
}

/// Build type the bench binary was compiled as.  Benches and the library
/// build in one tree, so this is also the library's build type.
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// The shared refusal gate: benchmarks never record numbers from
/// non-optimized builds.  Returns false (after printing why) when the bench
/// must exit instead of running; callers `return 2` on false.
inline bool require_release(bool allow_debug, const char* bench_name) {
#ifdef NDEBUG
  (void)allow_debug;
  (void)bench_name;
  return true;
#else
  if (allow_debug) return true;
  std::fprintf(stderr,
               "%s: refusing to record numbers from a non-optimized build "
               "(NDEBUG is not set).\n"
               "Configure with -DCMAKE_BUILD_TYPE=Release, or pass "
               "--allow-debug for a non-recorded run.\n",
               bench_name);
  return false;
#endif
}

/// Extra context entries: (key, raw JSON value) -- the value string is
/// emitted verbatim, so pass "12" / "true" / "\"text\"" already formatted.
using ContextExtras = std::vector<std::pair<std::string, std::string>>;

/// Emits the shared `"command"` and `"context"` members every BENCH_*.json
/// carries (the caller has already printed `{` and the "description"
/// entry, and continues with its result arrays afterwards):
///
///   date, num_cpus, max worker threads the bench drives and the derived
///   parallelism_limited tag, library_build_type, whether the
///   instrumentation layer is compiled in, any per-bench extras, the arena
///   fleet stats, and every nonzero kernel counter (process totals at call
///   time -- event counts only, never timings).
inline void print_context(const std::string& command, std::size_t threads,
                          const ContextExtras& extras = {}) {
  char date[64];
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S%z",
                std::localtime(&now));
  const unsigned num_cpus = std::thread::hardware_concurrency();

  std::printf("  \"command\": \"%s\",\n", command.c_str());
  std::printf("  \"context\": {\n");
  std::printf("    \"date\": \"%s\",\n", date);
  std::printf("    \"num_cpus\": %u,\n", num_cpus);
  std::printf("    \"max_threads\": %zu,\n", threads);
  std::printf("    \"parallelism_limited\": %s,\n",
              num_cpus < threads ? "true" : "false");
  std::printf("    \"library_build_type\": \"%s\",\n", build_type());
  std::printf("    \"instrumented\": %s,\n",
              instrument::compiled_in() ? "true" : "false");
  for (const auto& [key, value] : extras)
    std::printf("    \"%s\": %s,\n", key.c_str(), value.c_str());
  const instrument::MetricsSnapshot snapshot = instrument::metrics_snapshot();
  std::printf("    \"arenas\": %zu,\n", snapshot.arenas);
  std::printf("    \"arena_footprint_bytes\": %zu,\n",
              snapshot.arena_footprint_bytes);
  std::printf("    \"arena_peak_footprint_bytes\": %zu,\n",
              snapshot.arena_peak_footprint_bytes);
  std::printf("    \"kernel_counters\": {");
  bool first = true;
  for (std::size_t i = 0; i < instrument::kCounterCount; ++i) {
    if (snapshot.counters[i] == 0) continue;
    std::printf("%s\n      \"%s\": %llu", first ? "" : ",",
                instrument::counter_name(static_cast<instrument::Counter>(i)),
                static_cast<unsigned long long>(snapshot.counters[i]));
    first = false;
  }
  std::printf("%s}\n", first ? "" : "\n    ");
  std::printf("  },\n");
}

}  // namespace gncg::bench
