// Experiment E14 -- Theorem 20 and the Section 4 remark (general hosts).
//
// Paper claims: for arbitrary non-negative weights the PoA lies between
// (alpha+2)/2 and ((alpha+2)/2)^2; the 3-cycle with weights
// {0, 1, (alpha+2)/2} shows the proof's per-pair sigma analysis is tight at
// the square even though the realized cost ratio is only (alpha+2)/2.
//
// Reproduction: (a) the remark instance -- exhaustive NE enumeration, exact
// PoA, and max per-pair sigma; (b) random general hosts -- exact PoA within
// the squared bound.
#include <iostream>

#include "bench_util.hpp"
#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium_search.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "core/spanner_bounds.hpp"
#include "support/rng.hpp"

using namespace gncg;

int main() {
  print_banner(std::cout,
               "E14 | Theorem 20: general hosts, sigma vs realized PoA");

  std::cout << "\n(a) The Section 4 remark 3-cycle {0, 1, (a+2)/2}:\n";
  ConsoleTable remark({"alpha", "exact PoA", "(a+2)/2", "max sigma",
                       "((a+2)/2)^2", "PoA verdict", "sigma verdict"});
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    const auto c = theorem20_remark_construction(alpha);
    const auto equilibria = enumerate_nash_equilibria(c.game);
    const auto opt = exact_social_optimum(c.game);
    const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
    const double sigma = max_pair_sigma(c.game, c.equilibrium, c.optimum);
    remark.begin_row()
        .add(alpha, 2)
        .add(estimate.poa, 5)
        .add(paper::metric_poa(alpha), 5)
        .add(sigma, 5)
        .add(paper::general_poa_upper(alpha), 5)
        .add(bench::verdict(estimate.poa, paper::metric_poa(alpha)))
        .add(bench::verdict(sigma, paper::general_poa_upper(alpha)));
  }
  remark.print(std::cout);

  std::cout << "\n(b) Random general (non-metric) hosts, exact PoA (n=4):\n";
  ConsoleTable random_hosts({"alpha", "#NE", "exact PoA", "metric bound",
                             "squared bound", "within squared bound"});
  Rng rng(20);
  for (int trial = 0; trial < 6; ++trial) {
    const double alpha = rng.uniform_real(0.3, 3.0);
    const Game game(random_general_host(4, rng), alpha);
    const auto equilibria = enumerate_nash_equilibria(game);
    if (equilibria.empty()) continue;
    const auto opt = exact_social_optimum(game);
    const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
    random_hosts.begin_row()
        .add(alpha, 3)
        .add(static_cast<long long>(equilibria.profiles.size()))
        .add(estimate.poa, 5)
        .add(paper::metric_poa(alpha), 4)
        .add(paper::general_poa_upper(alpha), 4)
        .add(bench::bound_verdict(estimate.poa,
                                  paper::general_poa_upper(alpha)));
  }
  random_hosts.print(std::cout);
  std::cout
      << "Shape check: the remark instance realizes PoA = (a+2)/2 while its\n"
         "per-pair sigma hits ((a+2)/2)^2 exactly -- the Theorem 20 proof\n"
         "technique cannot give a better bound; random general hosts stay\n"
         "within the squared bound (Conjecture 2 expects (a+2)/2).\n";
  return 0;
}
